#include "obs/resource_sampler.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#ifdef __linux__
#include <dirent.h>
#include <unistd.h>
#endif

namespace neat::obs {

namespace {

#ifdef __linux__

/// The fields of /proc/self/stat the sampler reports.
struct ProcStat {
  std::uint64_t minflt{0};
  std::uint64_t majflt{0};
  double utime_s{0.0};
  double stime_s{0.0};
  long threads{0};
  double vsize_bytes{0.0};
  double rss_bytes{0.0};
};

bool read_proc_stat(ProcStat& out) {
  std::ifstream in("/proc/self/stat");
  if (!in) return false;
  std::string content;
  std::getline(in, content);
  // Field 2 (comm) may contain spaces; everything after the last ')' is
  // space-separated, starting with field 3 (state).
  const std::size_t close = content.rfind(')');
  if (close == std::string::npos) return false;
  std::istringstream rest(content.substr(close + 1));
  std::vector<std::string> fields;
  std::string tok;
  while (rest >> tok) fields.push_back(tok);
  // 1-based /proc(5) numbering: minflt=10, majflt=12, utime=14, stime=15,
  // num_threads=20, vsize=23, rss=24 — minus the two fields before the
  // split minus one for 0-based indexing.
  if (fields.size() < 22) return false;
  const double tick = static_cast<double>(sysconf(_SC_CLK_TCK));
  const double page = static_cast<double>(sysconf(_SC_PAGESIZE));
  try {
    out.minflt = std::stoull(fields[7]);
    out.majflt = std::stoull(fields[9]);
    out.utime_s = std::stod(fields[11]) / tick;
    out.stime_s = std::stod(fields[12]) / tick;
    out.threads = std::stol(fields[17]);
    out.vsize_bytes = std::stod(fields[20]);
    out.rss_bytes = std::stod(fields[21]) * page;
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

long count_open_fds() {
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  long n = 0;
  while (const dirent* e = readdir(dir)) {
    if (e->d_name[0] != '.') ++n;
  }
  closedir(dir);
  return n - 1;  // exclude the descriptor opendir() itself holds
}

#endif  // __linux__

}  // namespace

bool reset_peak_rss() {
#ifdef __linux__
  std::ofstream out("/proc/self/clear_refs");
  if (!out) return false;
  out << "5\n";
  out.flush();
  return static_cast<bool>(out);
#else
  return false;
#endif
}

std::uint64_t peak_rss_bytes() {
#ifdef __linux__
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) != 0) continue;
    std::istringstream rest(line.substr(6));
    std::uint64_t kb = 0;
    if (rest >> kb) return kb * 1024;
    return 0;
  }
#endif
  return 0;
}

ResourceSampler::ResourceSampler(Registry& registry, ResourceSamplerOptions options)
    : registry_(registry),
      options_(options),
      rss_bytes_(registry.gauge("neat_process_resident_memory_bytes")),
      virtual_bytes_(registry.gauge("neat_process_virtual_memory_bytes")),
      cpu_user_s_(registry.gauge("neat_process_cpu_seconds", {{"mode", "user"}})),
      cpu_system_s_(registry.gauge("neat_process_cpu_seconds", {{"mode", "system"}})),
      threads_(registry.gauge("neat_process_threads")),
      open_fds_(registry.gauge("neat_process_open_fds")),
      peak_rss_bytes_(registry.gauge("neat_process_peak_resident_memory_bytes")),
      minor_faults_(registry.counter("neat_store_page_faults_total", {{"kind", "minor"}})),
      major_faults_(registry.counter("neat_store_page_faults_total", {{"kind", "major"}})),
      samples_total_(registry.counter("neat_obs_resource_samples_total")) {
  options_.period = std::max(options_.period, std::chrono::milliseconds(10));
  registry.set_help("neat_process_resident_memory_bytes",
                    "Resident set size of this process, sampled from /proc/self.");
  registry.set_help("neat_process_virtual_memory_bytes",
                    "Virtual memory size of this process, sampled from /proc/self.");
  registry.set_help("neat_process_cpu_seconds",
                    "Cumulative CPU seconds of this process by mode, sampled.");
  registry.set_help("neat_process_threads", "Thread count of this process, sampled.");
  registry.set_help("neat_process_open_fds",
                    "Open file descriptors of this process, sampled.");
  registry.set_help("neat_process_peak_resident_memory_bytes",
                    "Lifetime RSS high-water mark of this process (VmHWM), sampled.");
  registry.set_help("neat_store_page_faults_total",
                    "Page faults taken by this process since the sampler started, by "
                    "kind — the demand-paging cost of mmap-backed columnar scans.");
  registry.set_help("neat_obs_resource_samples_total",
                    "Resource samples taken by the obs resource sampler.");
  sample_now();
  thread_ = std::thread([this] { loop(); });
}

ResourceSampler::~ResourceSampler() { stop(); }

void ResourceSampler::stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool ResourceSampler::sample_now() {
#ifdef __linux__
  ProcStat st;
  if (!read_proc_stat(st)) return false;
  rss_bytes_.set(st.rss_bytes);
  virtual_bytes_.set(st.vsize_bytes);
  cpu_user_s_.set(st.utime_s);
  cpu_system_s_.set(st.stime_s);
  threads_.set(static_cast<double>(st.threads));
  const long fds = count_open_fds();
  if (fds >= 0) open_fds_.set(static_cast<double>(fds));
  peak_rss_bytes_.set(static_cast<double>(peak_rss_bytes()));
  // Counters are monotonic, so fault totals are reported as deltas against
  // the previous sample; the first sample only sets the baseline.
  if (have_fault_baseline_) {
    minor_faults_.add(st.minflt - last_minflt_);
    major_faults_.add(st.majflt - last_majflt_);
  }
  last_minflt_ = st.minflt;
  last_majflt_ = st.majflt;
  have_fault_baseline_ = true;
  samples_total_.add(1);
  samples_.fetch_add(1, std::memory_order_relaxed);
  return true;
#else
  return false;
#endif
}

void ResourceSampler::loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, options_.period, [this] { return stop_; })) return;
    lock.unlock();
    sample_now();
    lock.lock();
  }
}

}  // namespace neat::obs
