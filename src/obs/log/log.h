// Async structured logging — the third pillar of the observability layer
// (counters live in obs/registry.h, spans in obs/trace.h).
//
// A log statement formats into a fixed-size Record on the calling thread's
// lock-free SPSC ring (src/obs/log/ring.h, the profiler's ring design) and
// returns; a background writer thread drains every ring, orders the batch
// by wall clock and emits one JSON line per record to the sink (stderr, a
// file, or a test callback). The hot path never allocates, locks or
// blocks:
//
//   * module lookup is a lock-free scan of an append-only table (a
//     handful of entries, so a few string compares);
//   * a statement below its module's level costs that scan plus one
//     relaxed atomic load — leaving NEAT_LOG(kDebug, ...) in hot paths is
//     free for practical purposes;
//   * an enabled statement formats message and key=value fields directly
//     into the claimed ring slot with std::to_chars — no iostreams, no
//     temporary strings;
//   * a full ring DROPS the record and bumps
//     `neat_obs_log_dropped_total{module}` — logging pressure can never
//     stall a request thread.
//
// Each emitted line is one standalone JSON object:
//
//   {"ts":"2026-08-08T12:00:00.123456Z","level":"info","module":"net",
//    "msg":"slow request","trace_id":7,"tid":3,"endpoint":"nearest",
//    "duration_ms":812.4}
//
// `trace_id` is pulled from obs::current_trace_id() automatically (omitted
// when 0), so one grep joins log lines against /tracez and /profilez.
// Repeated identical (module, level, message) records within
// `rate_limit_window` are suppressed and later summarized by a single line
// carrying `"suppressed":N`. The writer also counts every emitted line in
// `neat_obs_log_lines_total{level}`.
//
// Per-module levels are runtime-adjustable (the admin plane's GET/PUT
// /logz endpoint is a thin wrapper over set_level / logz_json), so a
// production process can be flipped to debug for one subsystem without a
// restart.
//
// Usage — the macro logs through Logger::global():
//
//   NEAT_LOG(kInfo, "net").msg("listening").kv("port", port);
//   NEAT_LOG(kWarn, "serve").msg("batch rejected").kv("capacity", cap);
//
// Tests construct private Loggers (own registry, capture sink) and log via
// Statement(logger, Level::kInfo, "mod") directly.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "obs/log/ring.h"
#include "obs/registry.h"

namespace neat::obs::log {

/// Severity ladder; kOff silences a module entirely.
enum class Level : std::uint8_t {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Lower-case level name ("trace" ... "error", "off").
[[nodiscard]] const char* level_name(Level level);

/// Parses a lower-case level name; nullopt on anything else.
[[nodiscard]] std::optional<Level> parse_level(std::string_view name);

class Logger;

/// One named subsystem of a Logger ("net", "serve", "core", ...), holding
/// its runtime-adjustable level and its cached drop counter. Modules are
/// created on first use and live for the logger's lifetime; every member a
/// statement touches is lock-free.
class Module {
 public:
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Level level() const {
    return static_cast<Level>(level_.load(std::memory_order_relaxed));
  }
  /// Whether a statement at `level` passes this module's filter.
  [[nodiscard]] bool enabled(Level level) const {
    return static_cast<std::uint8_t>(level) >=
           level_.load(std::memory_order_relaxed);
  }

 private:
  friend class Logger;
  friend class Statement;

  std::string name_;
  std::atomic<std::uint8_t> level_{static_cast<std::uint8_t>(Level::kInfo)};
  Counter* dropped_{nullptr};  ///< neat_obs_log_dropped_total{module=name}.
};

/// Tuning of a Logger. The global logger additionally honours the
/// NEAT_LOG_LEVEL, NEAT_LOG_RING_SLOTS and NEAT_LOG_POLL_MS environment
/// variables (the latter two exist to force tiny-ring / slow-drain runs in
/// CI without recompiling).
struct LoggerOptions {
  /// Level given to modules that have not been set explicitly.
  Level default_level{Level::kInfo};
  /// Slots of each per-thread record ring (clamped to >= 2).
  std::size_t ring_slots{1024};
  /// How long the writer sleeps between drain sweeps when idle.
  std::chrono::milliseconds poll_period{20};
  /// Window within which repeated identical (module, level, message)
  /// records are suppressed; 0 disables rate limiting.
  std::chrono::milliseconds rate_limit_window{1000};
  /// Registry for neat_obs_log_* series; null = Registry::global().
  Registry* registry{nullptr};
};

/// Receives each fully formatted JSON line (no trailing newline). Invoked
/// from the writer thread only, so a sink needs no internal locking.
using Sink = std::function<void(std::string_view line)>;

/// An async structured logger: per-thread rings in, JSON lines out.
/// `Logger::global()` is the process-wide instance NEAT_LOG reports into;
/// tests may construct private loggers. The constructor starts the writer
/// thread; the destructor drains every ring, flushes pending suppression
/// summaries and joins it. Threads must not log to a logger being
/// destroyed (automatic for the global instance).
class Logger {
 public:
  explicit Logger(LoggerOptions options = {});
  ~Logger();

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  /// The process-wide logger (options from the environment, see
  /// LoggerOptions). NEAT_LOG logs here.
  static Logger& global();

  /// The module named `name`, created at the default level on first use.
  /// The returned reference is valid for the logger's lifetime. Lock-free
  /// when the module exists; takes the registration mutex the first time.
  Module& module(const char* name);

  /// Sets `module`'s level (creating the module if needed).
  void set_level(std::string_view module, Level level);

  /// Sets the default level AND flips every existing module to it (the
  /// startup `--log-level` semantic; use set_level for one module).
  void set_default_level(Level level);

  [[nodiscard]] Level default_level() const {
    return static_cast<Level>(default_level_.load(std::memory_order_relaxed));
  }

  /// Replaces the sink; null restores the default (stderr). The change
  /// takes effect on the writer's next sweep.
  void set_sink(Sink sink);

  /// Routes output to `path` (truncating); false when the file cannot be
  /// opened (the current sink is kept). A set_sink() callback wins over
  /// the file.
  bool set_output_file(const std::string& path);

  /// Blocks until every record published before this call has been emitted
  /// (or suppressed) by the writer.
  void flush();

  /// Records dropped because a ring was full (sum over modules).
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Records swallowed by rate limiting (later reported in summaries).
  [[nodiscard]] std::uint64_t suppressed() const {
    return suppressed_.load(std::memory_order_relaxed);
  }

  /// JSON lines emitted (suppression summaries included).
  [[nodiscard]] std::uint64_t lines() const {
    return lines_.load(std::memory_order_relaxed);
  }

  /// The /logz payload: {"default":"info","lines":N,"dropped":N,
  /// "suppressed":N,"modules":[{"module":"net","level":"info"},...]}.
  [[nodiscard]] std::string logz_json() const;

  // --- implementation surface for Statement and the signal-safe path.

  /// The calling thread's ring for this logger, registered on first use.
  /// Returns nullptr only when the logger is shutting down.
  RecordRing* local_ring();

  /// Emits a preformatted message from an async-signal context: uses the
  /// calling thread's ring only if it already exists and no statement on
  /// this thread is mid-flight (the reentrancy guard), so it never locks
  /// or allocates. Returns false when the caller must fall back to its own
  /// signal-safe channel (write(2)). `module` must come from this logger.
  bool try_log_signal_safe(Level level, Module& module, const char* message) noexcept;

  /// Counts one dropped record against `module` (ring full).
  void count_drop(Module& module);

 private:
  friend class Statement;

  struct SuppressState {
    std::int64_t last_emit_ns{0};
    std::uint64_t suppressed{0};
    std::uint8_t level{0};
    const Module* module{nullptr};
  };

  void writer_loop();
  /// Drains every ring, orders by wall clock, emits. Returns records
  /// processed. `final_sweep` force-flushes pending suppression summaries.
  std::size_t sweep(bool final_sweep);
  void emit_record(const Record& record, std::string& line_buf);
  void emit_summary(const std::string& key, SuppressState& state, std::string& line_buf);
  void write_line(std::string_view line);
  Counter& line_counter(Level level);

  LoggerOptions options_;
  Registry* registry_;  ///< Resolved (never null).
  const std::uint64_t id_;  ///< Distinguishes loggers in the thread-local cache.

  // Module table: append-only, published via count_ so statements scan it
  // lock-free; registration serializes on mu_.
  static constexpr std::size_t kMaxModules = 64;
  std::unique_ptr<Module> modules_[kMaxModules];
  std::atomic<std::size_t> module_count_{0};
  std::atomic<std::uint8_t> default_level_;

  mutable std::mutex mu_;  ///< Guards registration + rings_ + sink state.
  std::vector<std::shared_ptr<RecordRing>> rings_;
  std::atomic<std::uint32_t> next_tid_{1};
  Sink sink_;                       ///< Guarded by mu_.
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> out_file_;  ///< Guarded by mu_.

  std::atomic<std::uint64_t> pushed_{0};   ///< Records published to rings.
  std::atomic<std::uint64_t> drained_{0};  ///< Records the writer consumed.
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> suppressed_{0};
  std::atomic<std::uint64_t> lines_{0};

  Counter* suppressed_counter_{nullptr};
  Counter* level_counters_[5]{};  ///< neat_obs_log_lines_total{level}.

  std::unordered_map<std::string, SuppressState> suppress_;  ///< Writer only.

  std::mutex writer_mu_;
  std::condition_variable writer_cv_;   ///< Wakes the writer (flush/stop).
  std::condition_variable drained_cv_;  ///< Signals sweep completion.
  bool stop_{false};
  bool wake_{false};
  std::thread writer_;  ///< Last member: started after all state above.
};

/// One in-flight log statement: claims a ring slot on construction (when
/// the level passes and the ring has room), formats in place via msg()/
/// kv(), publishes on destruction. Inert statements (filtered or dropped)
/// make every method a no-op. Not copyable; intended as the full-expression
/// temporary NEAT_LOG produces.
class Statement {
 public:
  Statement(Logger& logger, Level level, const char* module);
  ~Statement();
  Statement(const Statement&) = delete;
  Statement& operator=(const Statement&) = delete;

  /// Sets the message (the rate-limit key). Truncated at kMaxMessage.
  Statement& msg(std::string_view message);

  /// Appends a key/value field. Keys must be plain ASCII identifiers and
  /// must not collide with the envelope keys (ts, level, module, msg,
  /// trace_id, tid, suppressed, log_truncated). A pair that would overflow
  /// the record is dropped whole and the line is marked log_truncated.
  Statement& kv(const char* key, double v);
  Statement& kv(const char* key, bool v);
  Statement& kv(const char* key, const char* v);
  Statement& kv(const char* key, std::string_view v);
  Statement& kv(const char* key, const std::string& v) {
    return kv(key, std::string_view(v));
  }
  template <class T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>, int> = 0>
  Statement& kv(const char* key, T v) {
    if constexpr (std::is_signed_v<T>) {
      return kv_i64(key, static_cast<std::int64_t>(v));
    } else {
      return kv_u64(key, static_cast<std::uint64_t>(v));
    }
  }

  /// Whether this statement is recording (passed the filter and claimed a
  /// slot).
  [[nodiscard]] bool active() const { return record_ != nullptr; }

 private:
  Statement& kv_u64(const char* key, std::uint64_t v);
  Statement& kv_i64(const char* key, std::int64_t v);
  /// Reserves room for a full `,"key":<worst_case>` unit; null when the
  /// record is inert or the unit cannot fit (marks truncation).
  char* reserve_field(const char* key, std::size_t worst_case_value);

  Record* record_{nullptr};
  RecordRing* ring_{nullptr};
  Logger* logger_{nullptr};
};

}  // namespace neat::obs::log

/// Logs one structured line through Logger::global():
///   NEAT_LOG(kInfo, "net").msg("listening").kv("port", port);
/// `level_` is a log::Level enumerator name; `module_` a (string-literal)
/// module name. A statement below the module's runtime level costs a
/// lock-free table scan plus one relaxed atomic load.
#define NEAT_LOG(level_, module_)                                     \
  ::neat::obs::log::Statement(::neat::obs::log::Logger::global(),     \
                              ::neat::obs::log::Level::level_, module_)
