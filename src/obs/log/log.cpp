#include "obs/log/log.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include "common/error.h"
#include "obs/trace.h"

namespace neat::obs::log {

namespace {

// The calling thread's claimed rings, one slot per Logger this thread has
// logged to. Trivially constructed/destroyed (plain zero-init), so access
// is a constant offset from the thread pointer with no TLS guard branch —
// the property the signal-safe path (try_log_signal_safe) depends on.
// `in_log` is the reentrancy guard: while a Statement on this thread is
// mid-push, a signal handler must not push to the same SPSC ring.
inline constexpr std::size_t kMaxLoggersPerThread = 8;

struct TlsEntry {
  std::uint64_t logger_id;
  RecordRing* ring;
};

struct TlsSlots {
  TlsEntry entries[kMaxLoggersPerThread];
  std::uint32_t count;
  std::uint32_t in_log;
};

thread_local TlsSlots t_slots;

std::uint64_t next_logger_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::int64_t wall_now_ns() {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

/// Appends `v` JSON-string-escaped (without the surrounding quotes).
void append_escaped(std::string& out, std::string_view v) {
  for (const char c : v) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
}

/// Bytes `c` occupies inside a JSON string (see append_escaped).
std::size_t escaped_len(char c) {
  switch (c) {
    case '"':
    case '\\':
    case '\n':
    case '\r':
    case '\t':
      return 2;
    default:
      return static_cast<unsigned char>(c) < 0x20 ? 6 : 1;
  }
}

/// `{"ts":"2026-08-08T12:00:00.123456Z"` — UTC wall clock with microseconds.
void append_timestamp(std::string& out, std::int64_t wall_ns) {
  const std::time_t secs = static_cast<std::time_t>(wall_ns / 1'000'000'000);
  const long micros = static_cast<long>((wall_ns % 1'000'000'000) / 1000);
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[48];
  const std::size_t n = std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%S", &tm);
  out.append(buf, n);
  std::snprintf(buf, sizeof(buf), ".%06ldZ", micros);
  out += buf;
}

/// Key separator inside suppression-map keys; cannot appear in module
/// names and is vanishingly unlikely in messages.
inline constexpr char kKeySep = '\x1f';

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::kTrace: return "trace";
    case Level::kDebug: return "debug";
    case Level::kInfo: return "info";
    case Level::kWarn: return "warn";
    case Level::kError: return "error";
    case Level::kOff: return "off";
  }
  return "?";
}

std::optional<Level> parse_level(std::string_view name) {
  if (name == "trace") return Level::kTrace;
  if (name == "debug") return Level::kDebug;
  if (name == "info") return Level::kInfo;
  if (name == "warn") return Level::kWarn;
  if (name == "error") return Level::kError;
  if (name == "off") return Level::kOff;
  return std::nullopt;
}

// --- Logger -----------------------------------------------------------

Logger::Logger(LoggerOptions options)
    : options_(options),
      registry_(options.registry != nullptr ? options.registry : &Registry::global()),
      id_(next_logger_id()),
      default_level_(static_cast<std::uint8_t>(options.default_level)),
      out_file_(nullptr, &std::fclose) {
  options_.ring_slots = std::max<std::size_t>(2, options_.ring_slots);
  if (options_.poll_period.count() <= 0) options_.poll_period = std::chrono::milliseconds(1);
  registry_->set_help("neat_obs_log_lines_total",
                      "Structured log lines emitted, by level (suppression "
                      "summaries count at the suppressed line's level).");
  registry_->set_help("neat_obs_log_dropped_total",
                      "Structured log records dropped because the producing "
                      "thread's ring was full, by module.");
  registry_->set_help("neat_obs_log_suppressed_total",
                      "Structured log records swallowed by rate limiting "
                      "(reported later in \"suppressed\":N summary lines).");
  suppressed_counter_ = &registry_->counter("neat_obs_log_suppressed_total");
  for (std::uint8_t l = 0; l < 5; ++l) {
    level_counters_[l] = &registry_->counter(
        "neat_obs_log_lines_total", {{"level", level_name(static_cast<Level>(l))}});
  }
  writer_ = std::thread([this] { writer_loop(); });
}

Logger::~Logger() {
  {
    const std::lock_guard<std::mutex> lock(writer_mu_);
    stop_ = true;
    wake_ = true;
  }
  writer_cv_.notify_one();
  if (writer_.joinable()) writer_.join();
}

Logger& Logger::global() {
  // Touching Registry::global() in the constructor pins its construction
  // before (and therefore destruction after) this logger, so the final
  // drain at exit can still bump counters. Env overrides exist so CI can
  // force a tiny-ring / slow-drain run without recompiling.
  static Logger logger([] {
    LoggerOptions opts;
    if (const char* v = std::getenv("NEAT_LOG_LEVEL")) {
      if (const auto level = parse_level(v)) opts.default_level = *level;
    }
    if (const char* v = std::getenv("NEAT_LOG_RING_SLOTS")) {
      const unsigned long slots = std::strtoul(v, nullptr, 10);
      if (slots >= 2) opts.ring_slots = static_cast<std::size_t>(slots);
    }
    if (const char* v = std::getenv("NEAT_LOG_POLL_MS")) {
      const unsigned long ms = std::strtoul(v, nullptr, 10);
      if (ms > 0) opts.poll_period = std::chrono::milliseconds(ms);
    }
    return opts;
  }());
  return logger;
}

Module& Logger::module(const char* name) {
  const std::string_view wanted(name);
  // Hot path: the table is append-only and published via module_count_, so
  // a scan without the mutex sees fully constructed modules.
  const std::size_t count = module_count_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < count; ++i) {
    if (modules_[i]->name_ == wanted) return *modules_[i];
  }
  // Cold path: register under the mutex (double-checked).
  const std::lock_guard<std::mutex> lock(mu_);
  const std::size_t n = module_count_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i) {
    if (modules_[i]->name_ == wanted) return *modules_[i];
  }
  NEAT_EXPECT(n < kMaxModules, "too many log modules");
  auto mod = std::make_unique<Module>();
  mod->name_.assign(wanted);
  mod->level_.store(default_level_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  mod->dropped_ = &registry_->counter("neat_obs_log_dropped_total",
                                      {{"module", mod->name_}});
  modules_[n] = std::move(mod);
  module_count_.store(n + 1, std::memory_order_release);
  return *modules_[n];
}

void Logger::set_level(std::string_view module_name, Level level) {
  // module() wants a NUL-terminated name; the cold path is fine with the
  // temporary copy.
  const std::string name(module_name);
  Module& mod = module(name.c_str());
  mod.level_.store(static_cast<std::uint8_t>(level), std::memory_order_relaxed);
}

void Logger::set_default_level(Level level) {
  default_level_.store(static_cast<std::uint8_t>(level), std::memory_order_relaxed);
  const std::size_t count = module_count_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < count; ++i) {
    modules_[i]->level_.store(static_cast<std::uint8_t>(level),
                              std::memory_order_relaxed);
  }
}

void Logger::set_sink(Sink sink) {
  const std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
}

bool Logger::set_output_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::lock_guard<std::mutex> lock(mu_);
  out_file_.reset(f);
  return true;
}

void Logger::flush() {
  const std::uint64_t target = pushed_.load(std::memory_order_acquire);
  std::unique_lock<std::mutex> lock(writer_mu_);
  wake_ = true;
  writer_cv_.notify_one();
  drained_cv_.wait(lock, [&] {
    return drained_.load(std::memory_order_acquire) >= target;
  });
}

RecordRing* Logger::local_ring() {
  TlsSlots& tls = t_slots;
  for (std::uint32_t i = 0; i < tls.count; ++i) {
    if (tls.entries[i].logger_id == id_) return tls.entries[i].ring;
  }
  if (tls.count >= kMaxLoggersPerThread) return nullptr;
  auto ring = std::make_shared<RecordRing>();
  ring->slots = std::make_unique<Record[]>(options_.ring_slots);
  ring->capacity = options_.ring_slots;
  ring->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    rings_.push_back(ring);
  }
  tls.entries[tls.count] = {id_, ring.get()};
  tls.count += 1;
  return ring.get();
}

bool Logger::try_log_signal_safe(Level level, Module& module,
                                 const char* message) noexcept {
  if (!module.enabled(level)) return true;  // Filtered: nothing to write anywhere.
  TlsSlots& tls = t_slots;
  if (tls.in_log != 0) return false;  // Interrupted a statement mid-push.
  RecordRing* ring = nullptr;
  for (std::uint32_t i = 0; i < tls.count; ++i) {
    if (tls.entries[i].logger_id == id_) {
      ring = tls.entries[i].ring;
      break;
    }
  }
  if (ring == nullptr) return false;  // Registration would lock + allocate.
  Record* r = ring->begin_push();
  if (r == nullptr) {
    count_drop(module);
    return true;  // Dropped-and-counted is the contract, not a failure.
  }
  r->wall_ns = wall_now_ns();
  r->trace_id = obs::current_trace_id();
  r->tid = ring->tid;
  r->level = static_cast<std::uint8_t>(level);
  r->truncated = 0;
  r->fields_len = 0;
  r->module = &module;
  std::size_t len = std::strlen(message);
  if (len > kMaxMessage) {
    len = kMaxMessage;
    r->truncated = 1;
  }
  std::memcpy(r->msg, message, len);
  r->msg_len = static_cast<std::uint16_t>(len);
  ring->publish();
  pushed_.fetch_add(1, std::memory_order_release);
  return true;
}

void Logger::count_drop(Module& module) {
  dropped_.fetch_add(1, std::memory_order_relaxed);
  module.dropped_->add();
}

std::string Logger::logz_json() const {
  struct Entry {
    std::string name;
    Level level;
  };
  std::vector<Entry> entries;
  const std::size_t count = module_count_.load(std::memory_order_acquire);
  entries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    entries.push_back({modules_[i]->name(), modules_[i]->level()});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.name < b.name; });
  std::string out = "{\"default\":\"";
  out += level_name(default_level());
  out += "\",\"lines\":";
  out += std::to_string(lines());
  out += ",\"dropped\":";
  out += std::to_string(dropped());
  out += ",\"suppressed\":";
  out += std::to_string(suppressed());
  out += ",\"modules\":[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"module\":\"";
    append_escaped(out, entries[i].name);
    out += "\",\"level\":\"";
    out += level_name(entries[i].level);
    out += "\"}";
  }
  out += "]}";
  return out;
}

Counter& Logger::line_counter(Level level) {
  const std::uint8_t l = static_cast<std::uint8_t>(level);
  return *level_counters_[l < 5 ? l : 4];
}

void Logger::writer_loop() {
  std::string line_buf;
  line_buf.reserve(1024);
  for (;;) {
    bool stopping;
    {
      std::unique_lock<std::mutex> lock(writer_mu_);
      writer_cv_.wait_for(lock, options_.poll_period, [&] { return stop_ || wake_; });
      wake_ = false;
      stopping = stop_;
    }
    sweep(stopping);
    {
      const std::lock_guard<std::mutex> lock(writer_mu_);
      drained_cv_.notify_all();
    }
    if (stopping) return;
  }
}

std::size_t Logger::sweep(bool final_sweep) {
  std::vector<std::shared_ptr<RecordRing>> rings;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    rings = rings_;
  }
  std::vector<Record> batch;
  Record r;
  for (const auto& ring : rings) {
    while (ring->pop(r)) batch.push_back(r);
  }
  // Records from different threads interleave by wall clock; within one
  // thread stable_sort preserves push order (equal timestamps possible at
  // nanosecond resolution under coarse clocks).
  std::stable_sort(batch.begin(), batch.end(), [](const Record& a, const Record& b) {
    return a.wall_ns < b.wall_ns;
  });
  std::string line_buf;
  for (const Record& rec : batch) emit_record(rec, line_buf);
  drained_.fetch_add(batch.size(), std::memory_order_release);

  // Expired suppression windows report their swallowed repeats; the final
  // sweep force-expires everything so no count is lost at shutdown.
  const std::int64_t window_ns =
      static_cast<std::int64_t>(options_.rate_limit_window.count()) * 1'000'000;
  const std::int64_t now_ns = wall_now_ns();
  for (auto it = suppress_.begin(); it != suppress_.end();) {
    SuppressState& state = it->second;
    if (state.suppressed > 0 &&
        (final_sweep || now_ns - state.last_emit_ns >= window_ns)) {
      emit_summary(it->first, state, line_buf);
    }
    // Prune long-idle entries so the map stays bounded by active keys.
    if (state.suppressed == 0 && now_ns - state.last_emit_ns > 10 * window_ns) {
      it = suppress_.erase(it);
    } else {
      ++it;
    }
  }
  return batch.size();
}

void Logger::emit_record(const Record& record, std::string& line_buf) {
  const Module* module = static_cast<const Module*>(record.module);
  const std::string_view msg(record.msg, record.msg_len);
  const std::int64_t window_ns =
      static_cast<std::int64_t>(options_.rate_limit_window.count()) * 1'000'000;
  SuppressState* state = nullptr;
  if (window_ns > 0) {
    std::string key = module->name();
    key += kKeySep;
    key += static_cast<char>('0' + record.level);
    key += kKeySep;
    key.append(msg);
    state = &suppress_[key];
    if (state->last_emit_ns != 0 &&
        record.wall_ns - state->last_emit_ns < window_ns) {
      state->suppressed += 1;
      suppressed_.fetch_add(1, std::memory_order_relaxed);
      suppressed_counter_->add();
      return;
    }
    if (state->suppressed > 0) {
      // Close the previous window before the fresh line so the summary
      // reads in order.
      emit_summary(key, *state, line_buf);
    }
    state->last_emit_ns = record.wall_ns;
    state->level = record.level;
    state->module = module;
  }

  line_buf.clear();
  append_timestamp(line_buf += "{\"ts\":\"", record.wall_ns);
  line_buf += "\",\"level\":\"";
  line_buf += level_name(static_cast<Level>(record.level));
  line_buf += "\",\"module\":\"";
  append_escaped(line_buf, module->name());
  line_buf += "\",\"msg\":\"";
  append_escaped(line_buf, msg);
  line_buf += '"';
  if (record.trace_id != 0) {
    line_buf += ",\"trace_id\":";
    line_buf += std::to_string(record.trace_id);
  }
  line_buf += ",\"tid\":";
  line_buf += std::to_string(record.tid);
  line_buf.append(record.fields, record.fields_len);
  if (record.truncated != 0) line_buf += ",\"log_truncated\":true";
  line_buf += '}';

  lines_.fetch_add(1, std::memory_order_relaxed);
  line_counter(static_cast<Level>(record.level)).add();
  write_line(line_buf);
}

void Logger::emit_summary(const std::string& key, SuppressState& state,
                          std::string& line_buf) {
  // The key is module \x1f level \x1f msg; recover the message part.
  const std::size_t msg_at = key.find(kKeySep, key.find(kKeySep) + 1) + 1;
  const std::string_view msg = std::string_view(key).substr(msg_at);

  line_buf.clear();
  append_timestamp(line_buf += "{\"ts\":\"", wall_now_ns());
  line_buf += "\",\"level\":\"";
  line_buf += level_name(static_cast<Level>(state.level));
  line_buf += "\",\"module\":\"";
  append_escaped(line_buf, state.module->name());
  line_buf += "\",\"msg\":\"";
  append_escaped(line_buf, msg);
  line_buf += "\",\"suppressed\":";
  line_buf += std::to_string(state.suppressed);
  line_buf += '}';

  state.suppressed = 0;
  state.last_emit_ns = wall_now_ns();
  lines_.fetch_add(1, std::memory_order_relaxed);
  line_counter(static_cast<Level>(state.level)).add();
  write_line(line_buf);
}

void Logger::write_line(std::string_view line) {
  // Single writer thread; the lock only orders against sink swaps. Sinks
  // must not call back into methods that take mu_ (set_sink, set_level...).
  const std::lock_guard<std::mutex> lock(mu_);
  if (sink_) {
    sink_(line);
    return;
  }
  std::FILE* out = out_file_ != nullptr ? out_file_.get() : stderr;
  // One buffered write per line (then flush) keeps lines whole even when
  // stderr is shared with other writers.
  std::string with_newline(line);
  with_newline += '\n';
  std::fwrite(with_newline.data(), 1, with_newline.size(), out);
  std::fflush(out);
}

// --- Statement --------------------------------------------------------

Statement::Statement(Logger& logger, Level level, const char* module_name) {
  Module& module = logger.module(module_name);
  if (!module.enabled(level)) return;
  RecordRing* ring = logger.local_ring();
  if (ring == nullptr) {
    logger.count_drop(module);
    return;
  }
  // The guard must be up BEFORE begin_push: a signal handler logging via
  // try_log_signal_safe between our head load and our publish would claim
  // the same slot (two producers on an SPSC ring). Raised here, the
  // handler sees in_log and falls back to write(2) instead.
  t_slots.in_log = 1;
  Record* record = ring->begin_push();
  if (record == nullptr) {
    t_slots.in_log = 0;
    logger.count_drop(module);
    return;
  }
  record->wall_ns = wall_now_ns();
  record->trace_id = obs::current_trace_id();
  record->tid = ring->tid;
  record->level = static_cast<std::uint8_t>(level);
  record->truncated = 0;
  record->msg_len = 0;
  record->fields_len = 0;
  record->module = &module;
  record_ = record;
  ring_ = ring;
  logger_ = &logger;
}

Statement::~Statement() {
  if (record_ == nullptr) return;
  ring_->publish();
  logger_->pushed_.fetch_add(1, std::memory_order_release);
  t_slots.in_log = 0;
}

Statement& Statement::msg(std::string_view message) {
  if (record_ == nullptr) return *this;
  std::size_t len = message.size();
  if (len > kMaxMessage) {
    len = kMaxMessage;
    record_->truncated = 1;
  }
  std::memcpy(record_->msg, message.data(), len);
  record_->msg_len = static_cast<std::uint16_t>(len);
  return *this;
}

char* Statement::reserve_field(const char* key, std::size_t worst_case_value) {
  if (record_ == nullptr) return nullptr;
  const std::size_t key_len = std::strlen(key);
  const std::size_t need = 4 + key_len + worst_case_value;  // ,"key":value
  if (record_->fields_len + need > kMaxFields) {
    record_->truncated = 1;  // Whole pair dropped; the JSON stays well-formed.
    return nullptr;
  }
  char* p = record_->fields + record_->fields_len;
  *p++ = ',';
  *p++ = '"';
  std::memcpy(p, key, key_len);
  p += key_len;
  *p++ = '"';
  *p++ = ':';
  return p;
}

Statement& Statement::kv_u64(const char* key, std::uint64_t v) {
  char* p = reserve_field(key, 20);
  if (p == nullptr) return *this;
  const auto res = std::to_chars(p, p + 20, v);
  record_->fields_len = static_cast<std::uint16_t>(res.ptr - record_->fields);
  return *this;
}

Statement& Statement::kv_i64(const char* key, std::int64_t v) {
  char* p = reserve_field(key, 21);
  if (p == nullptr) return *this;
  const auto res = std::to_chars(p, p + 21, v);
  record_->fields_len = static_cast<std::uint16_t>(res.ptr - record_->fields);
  return *this;
}

Statement& Statement::kv(const char* key, double v) {
  char* p = reserve_field(key, 32);
  if (p == nullptr) return *this;
  char* end;
  if (std::isfinite(v)) {
    end = std::to_chars(p, p + 32, v).ptr;
  } else {
    // JSON has no inf/nan literals; null keeps every line parseable.
    std::memcpy(p, "null", 4);
    end = p + 4;
  }
  record_->fields_len = static_cast<std::uint16_t>(end - record_->fields);
  return *this;
}

Statement& Statement::kv(const char* key, bool v) {
  char* p = reserve_field(key, 5);
  if (p == nullptr) return *this;
  const char* text = v ? "true" : "false";
  const std::size_t n = v ? 4 : 5;
  std::memcpy(p, text, n);
  record_->fields_len = static_cast<std::uint16_t>(p + n - record_->fields);
  return *this;
}

Statement& Statement::kv(const char* key, const char* v) {
  return kv(key, std::string_view(v));
}

Statement& Statement::kv(const char* key, std::string_view v) {
  std::size_t escaped = 0;
  for (const char c : v) escaped += escaped_len(c);
  char* p = reserve_field(key, escaped + 2);
  if (p == nullptr) return *this;
  *p++ = '"';
  for (const char c : v) {
    switch (c) {
      case '"': *p++ = '\\'; *p++ = '"'; break;
      case '\\': *p++ = '\\'; *p++ = '\\'; break;
      case '\n': *p++ = '\\'; *p++ = 'n'; break;
      case '\r': *p++ = '\\'; *p++ = 'r'; break;
      case '\t': *p++ = '\\'; *p++ = 't'; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          *p++ = '\\';
          *p++ = 'u';
          *p++ = '0';
          *p++ = '0';
          *p++ = hex[(c >> 4) & 0xf];
          *p++ = hex[c & 0xf];
        } else {
          *p++ = c;
        }
    }
  }
  *p++ = '"';
  record_->fields_len = static_cast<std::uint16_t>(p - record_->fields);
  return *this;
}

}  // namespace neat::obs::log
