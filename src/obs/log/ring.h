// Per-thread record rings of the structured logger — the only data
// structure a NEAT_LOG statement writes.
//
// Each logging thread owns one RecordRing per Logger it talks to: the
// thread is the single producer, the logger's background writer is the
// single consumer, so the classic SPSC ring with acquire/release cursors
// from src/obs/prof/ring.h carries over unchanged — every producer-side
// operation is a relaxed/release atomic, no locks, no allocation, no libc
// calls beyond clock_gettime. Unlike the profiler's rings (drained only
// after the timer is disarmed) these are drained *concurrently* with
// production, which SPSC acquire/release supports by construction: the
// consumer only reads slots strictly before `head`, the producer publishes
// `head` after the slot is fully written.
//
// Records are fixed-size so a statement never allocates: a message longer
// than kMaxMessage is truncated (and says so), a key=value payload that
// would overflow kMaxFields drops whole pairs (never half a pair, so the
// emitted JSON stays well-formed), and a full ring drops the record and
// bumps `neat_obs_log_dropped_total{module}` instead of blocking the
// caller or overwriting a slot the writer may be reading.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace neat::obs::log {

/// Longest message payload a record carries; longer messages truncate.
inline constexpr std::size_t kMaxMessage = 240;

/// Longest preformatted key=value JSON payload; overflow drops whole pairs.
inline constexpr std::size_t kMaxFields = 496;

/// One structured log record, fully formatted on the producing thread.
/// `fields` holds preformatted `,"key":value` JSON fragments (comma-led so
/// the writer can splice them after the standard envelope keys).
struct Record {
  std::int64_t wall_ns{0};     ///< CLOCK_REALTIME nanoseconds at the call site.
  std::uint64_t trace_id{0};   ///< Ambient obs::current_trace_id(), 0 = none.
  std::uint32_t tid{0};        ///< Producing thread's logger-local id.
  std::uint8_t level{0};       ///< log::Level of the statement.
  std::uint8_t truncated{0};   ///< 1 when message or fields hit their cap.
  std::uint16_t msg_len{0};    ///< Valid bytes of `msg`.
  std::uint16_t fields_len{0}; ///< Valid bytes of `fields`.
  const void* module{nullptr}; ///< The owning Logger's Module*, stable.
  char msg[kMaxMessage];
  char fields[kMaxFields];
};

/// Bounded SPSC ring of records. Producer = the owning thread's NEAT_LOG
/// statements; consumer = the logger's background writer, draining live.
struct RecordRing {
  std::atomic<std::uint64_t> head{0};  ///< Next slot to write (producer).
  std::atomic<std::uint64_t> tail{0};  ///< Next slot to read (consumer).
  std::unique_ptr<Record[]> slots;     ///< `capacity` entries.
  std::size_t capacity{0};
  std::uint32_t tid{0};  ///< Claiming thread's logger-local id.

  /// Claims the next write slot, or nullptr when the ring is full. The
  /// producer fills the slot, then calls publish(). Signal-handler safe.
  Record* begin_push() {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    if (h - tail.load(std::memory_order_acquire) >= capacity) return nullptr;
    return &slots[h % capacity];
  }

  /// Makes the slot returned by begin_push() visible to the writer.
  void publish() {
    head.store(head.load(std::memory_order_relaxed) + 1, std::memory_order_release);
  }

  /// Consumes the oldest record into `out`; false when empty. Safe to call
  /// while the producer keeps pushing (SPSC: the consumer never touches the
  /// slot `head` points at).
  bool pop(Record& out) {
    const std::uint64_t t = tail.load(std::memory_order_relaxed);
    if (t == head.load(std::memory_order_acquire)) return false;
    out = slots[t % capacity];
    tail.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Records currently buffered (approximate under concurrent production).
  [[nodiscard]] std::size_t size() const {
    const std::uint64_t h = head.load(std::memory_order_acquire);
    const std::uint64_t t = tail.load(std::memory_order_acquire);
    return static_cast<std::size_t>(h - t);
  }
};

}  // namespace neat::obs::log
