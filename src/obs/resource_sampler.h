// Background process-resource sampler feeding the metric registry.
//
// A single thread wakes every `period` and snapshots the process's own
// footprint from /proc/self into registry gauges, so a scrape of /metrics
// answers "how big is this server right now" without any external agent:
//
//   neat_process_resident_memory_bytes   RSS (/proc/self/stat, pages × page size)
//   neat_process_virtual_memory_bytes    virtual size
//   neat_process_cpu_seconds{mode="user"|"system"}
//                                        cumulative CPU, sampled (utime/stime)
//   neat_process_threads                 thread count
//   neat_process_open_fds                open descriptors (/proc/self/fd)
//   neat_process_peak_resident_memory_bytes
//                                        lifetime RSS high-water mark (VmHWM)
//   neat_store_page_faults_total{kind="minor"|"major"}
//                                        page faults since the sampler
//                                        started (minflt/majflt deltas) —
//                                        the demand-paging cost of the
//                                        mmap-backed columnar store
//   neat_obs_resource_samples_total      samples taken so far
//
// One synchronous sample runs in the constructor, so the gauges are already
// populated for a scrape that races the first period. On non-Linux
// platforms sample_now() returns false and the gauges stay at zero; the
// thread and the API still behave identically.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "obs/registry.h"

namespace neat::obs {

/// Lifetime resident-set high-water mark of this process in bytes (VmHWM
/// from /proc/self/status); 0 when unavailable (non-Linux).
[[nodiscard]] std::uint64_t peak_rss_bytes();

/// Resets the kernel's RSS high-water mark ("5" to /proc/self/clear_refs),
/// so a benchmark can attribute a peak to one section. Returns false when
/// unsupported.
bool reset_peak_rss();

/// Tuning of the resource sampler.
struct ResourceSamplerOptions {
  /// Delay between samples; clamped to at least 10ms.
  std::chrono::milliseconds period{1000};
};

/// Samples /proc/self into gauges of `registry` until stop().
class ResourceSampler {
 public:
  /// Keeps a reference to `registry`; do not outlive it. Takes one sample
  /// synchronously, then starts the background thread.
  explicit ResourceSampler(Registry& registry, ResourceSamplerOptions options = {});
  ~ResourceSampler();

  ResourceSampler(const ResourceSampler&) = delete;
  ResourceSampler& operator=(const ResourceSampler&) = delete;

  /// Stops and joins the background thread. Idempotent.
  void stop();

  /// Takes one sample immediately (also what the thread calls). Returns
  /// false when /proc/self is unavailable (non-Linux).
  bool sample_now();

  /// Samples taken so far (including the constructor's).
  [[nodiscard]] std::uint64_t samples() const {
    return samples_.load(std::memory_order_relaxed);
  }

 private:
  void loop();

  Registry& registry_;
  ResourceSamplerOptions options_;
  Gauge& rss_bytes_;
  Gauge& virtual_bytes_;
  Gauge& cpu_user_s_;
  Gauge& cpu_system_s_;
  Gauge& threads_;
  Gauge& open_fds_;
  Gauge& peak_rss_bytes_;
  Counter& minor_faults_;
  Counter& major_faults_;
  Counter& samples_total_;
  bool have_fault_baseline_{false};  ///< Only the sampling thread touches these.
  std::uint64_t last_minflt_{0};
  std::uint64_t last_majflt_{0};
  std::atomic<std::uint64_t> samples_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_{false};        ///< Guarded by mu_.
  std::thread thread_;      ///< Last member: started after all state.
};

}  // namespace neat::obs
