#include "obs/http_exporter.h"

#include <unistd.h>

#include <chrono>
#include <thread>
#include <utility>

#include "common/error.h"
#include "common/string_util.h"
#include "obs/prof/profiler.h"

#ifndef NEAT_GIT_SHA
#define NEAT_GIT_SHA "unknown"
#endif

namespace neat::obs {

net::HttpServerOptions HttpExporter::server_options() const {
  net::HttpServerOptions sopts;
  sopts.bind_address = options_.bind_address;
  sopts.port = options_.port;
  sopts.worker_threads = options_.worker_threads;
  sopts.max_pending_connections = options_.max_pending_connections;
  // Legacy neat_obs_* instrumentation: the admin plane keeps its historical
  // metric names (and nothing else) in the registry it exports, so scrape
  // output is unchanged by the net::HttpServer extraction.
  sopts.observer = [this](const std::string& path, int code) {
    count_request(path, code);
  };
  sopts.on_shed = [this] {
    registry_.counter("neat_obs_http_connections_dropped_total").add(1);
  };
  return sopts;
}

HttpExporter::HttpExporter(Registry& registry, HttpExporterOptions options,
                           Tracer* tracer)
    : registry_(registry),
      tracer_(tracer),
      options_(std::move(options)),
      start_(std::chrono::steady_clock::now()),
      server_(server_options()) {
  register_routes();
  server_.start();
}

void HttpExporter::register_routes() {
  server_.handle("/metrics", [this](const net::HttpRequest&) {
    return net::HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                             registry_.to_prometheus()};
  });
  server_.handle("/healthz", [](const net::HttpRequest&) {
    return net::HttpResponse{200, "text/plain; charset=utf-8", "ok\n"};
  });
  server_.handle("/readyz", [this](const net::HttpRequest&) {
    const bool ready = !options_.ready || options_.ready();
    if (ready) return net::HttpResponse{200, "text/plain; charset=utf-8", "ready\n"};
    return net::HttpResponse{503, "text/plain; charset=utf-8", "not ready\n"};
  });
  server_.handle("/statusz", [this](const net::HttpRequest&) {
    return net::HttpResponse{200, "application/json", status_json()};
  });
  server_.handle("/tracez", [this](const net::HttpRequest&) {
    if (tracer_ == nullptr) {
      return net::HttpResponse{404, "text/plain; charset=utf-8",
                               "no tracer attached\n"};
    }
    return net::HttpResponse{200, "application/json",
                             tracer_->to_tracez_json(options_.tracez_spans)};
  });
  server_.handle("/profilez", [this](const net::HttpRequest& q) {
    // One profiling run per request: ?seconds=N wall clock, deliberately
    // blocking this worker — the other workers keep /metrics and /healthz
    // live, and the profiler itself rejects overlap process-wide.
    double seconds = 2.0;
    if (const std::string* raw = q.param("seconds")) {
      try {
        seconds = parse_double(*raw);
      } catch (const ParseError&) {
        seconds = -1.0;
      }
      if (!(seconds > 0.0) || seconds > options_.profilez_max_seconds) {
        return net::HttpResponse{
            400, "application/json",
            str_cat("{\"error\":\"invalid_parameter\",\"message\":\"seconds must be "
                    "a number in (0, ",
                    format_fixed(options_.profilez_max_seconds, 0), "]\"}")};
      }
    }
    prof::ProfilerOptions popts;
    if (const std::string* raw = q.param("hz")) {
      try {
        popts.sample_hz = static_cast<int>(parse_int(*raw));
      } catch (const ParseError&) {
        popts.sample_hz = 0;
      }
      if (popts.sample_hz < 1 || popts.sample_hz > 10000) {
        return net::HttpResponse{
            400, "application/json",
            "{\"error\":\"invalid_parameter\",\"message\":\"hz must be an integer "
            "in [1, 10000]\"}"};
      }
    }
    if (!prof::Profiler::global().start(popts)) {
      return net::HttpResponse{
          409, "application/json",
          "{\"error\":\"profiler_busy\",\"message\":\"a profiling session is "
          "already active\"}"};
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    const prof::Profile profile = prof::Profiler::global().stop();
    std::string folded = profile.to_folded();
    if (folded.empty()) {
      // An idle process accrues no CPU time, so a valid run can see zero
      // samples; say so instead of returning an empty 200 body.
      folded = str_cat("# no samples: process used no CPU during the ",
                       format_fixed(seconds, 1), "s window\n");
    }
    return net::HttpResponse{200, "text/plain; charset=utf-8", std::move(folded)};
  });
  server_.handle(
      "/logz",
      [this](const net::HttpRequest& q) {
        log::Logger& logger =
            options_.logger != nullptr ? *options_.logger : log::Logger::global();
        if (q.method == "PUT") {
          const std::string* raw = q.param("level");
          if (raw == nullptr) {
            return net::HttpResponse{
                400, "application/json",
                "{\"error\":\"missing_parameter\",\"message\":\"PUT /logz "
                "requires ?level=trace|debug|info|warn|error|off\"}"};
          }
          const std::optional<log::Level> level = log::parse_level(*raw);
          if (!level.has_value()) {
            return net::HttpResponse{
                400, "application/json",
                str_cat("{\"error\":\"invalid_level\",\"message\":\"unknown "
                        "level '",
                        json_escape(*raw),
                        "' (want trace|debug|info|warn|error|off)\"}")};
          }
          const std::string* module = q.param("module");
          if (module == nullptr || *module == "*") {
            logger.set_default_level(*level);
          } else {
            logger.set_level(*module, *level);
          }
          log::Statement(logger, log::Level::kInfo, "obs")
              .msg("log level changed via /logz")
              .kv("module", module != nullptr ? module->c_str() : "*")
              .kv("level", log::level_name(*level));
        }
        return net::HttpResponse{200, "application/json", logger.logz_json()};
      },
      /*allow_put=*/true);
}

std::string HttpExporter::status_json() const {
  const double uptime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  std::string out = "{\"service\":\"neat\",\"pid\":";
  out += std::to_string(::getpid());
  out += ",\"uptime_s\":";
  out += format_fixed(uptime_s, 3);
  out += ",\"requests_served\":";
  out += std::to_string(requests_served());
  out += ",\"build\":{\"git_sha\":\"";
  out += json_escape(NEAT_GIT_SHA);
  out += "\",\"compiler\":\"";
  out += json_escape(__VERSION__);
  out += "\"},\"profiler\":";
  out += prof::Profiler::global().status_json();
  out += ",\"log\":";
  out += (options_.logger != nullptr ? *options_.logger : log::Logger::global())
             .logz_json();
  if (options_.status_fields) {
    const std::string extra = options_.status_fields();
    if (!extra.empty()) {
      out += ',';
      out += extra;
    }
  }
  out += '}';
  return out;
}

void HttpExporter::count_request(const std::string& path, int code) const {
  // Bound the label cardinality: only the fixed endpoint table appears as a
  // path label, anything else (including malformed requests) is "other".
  const bool known = path == "/metrics" || path == "/healthz" || path == "/readyz" ||
                     path == "/statusz" || path == "/tracez" ||
                     path == "/profilez" || path == "/logz";
  registry_.counter("neat_obs_http_requests_total",
                    {{"path", known ? path : "other"}, {"code", std::to_string(code)}})
      .add(1);
}

}  // namespace neat::obs
