#include "obs/http_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.h"
#include "common/string_util.h"

#ifndef NEAT_GIT_SHA
#define NEAT_GIT_SHA "unknown"
#endif

namespace neat::obs {

namespace {

constexpr std::size_t kMaxRequestBytes = 8192;

const char* reason_phrase(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

// 2-second socket timeouts: long enough for any scraper, short enough that
// a stalled client cannot wedge a worker (or shutdown) for long.
void set_socket_timeouts(int fd) {
  timeval tv{};
  tv.tv_sec = 2;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::string json_number(double v) {
  const std::string s = format_fixed(v, 3);
  return s;
}

}  // namespace

HttpExporter::HttpExporter(Registry& registry, HttpExporterOptions options,
                           Tracer* tracer)
    : registry_(registry),
      tracer_(tracer),
      options_(std::move(options)),
      start_(std::chrono::steady_clock::now()) {
  if (options_.worker_threads == 0) options_.worker_threads = 1;
  if (options_.max_pending_connections == 0) options_.max_pending_connections = 1;

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw Error(str_cat("HttpExporter: socket() failed: ", std::strerror(errno)));
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw Error(str_cat("HttpExporter: invalid bind address '",
                        options_.bind_address, "'"));
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw Error(str_cat("HttpExporter: cannot listen on ", options_.bind_address, ":",
                        options_.port, ": ", why));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw Error(str_cat("HttpExporter: getsockname() failed: ", why));
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_.store(fd, std::memory_order_release);

  workers_.reserve(options_.worker_threads);
  for (std::size_t i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

HttpExporter::~HttpExporter() { stop(); }

void HttpExporter::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    if (acceptor_.joinable()) acceptor_.join();
    for (std::thread& w : workers_) {
      if (w.joinable()) w.join();
    }
    return;
  }
  // Unblock the acceptor: shutdown() makes a blocked accept() return on
  // Linux, close() releases the port.
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  queue_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  // Connections still queued were never answered; just release them.
  const std::lock_guard<std::mutex> lock(queue_mu_);
  for (const int fd : pending_) ::close(fd);
  pending_.clear();
}

void HttpExporter::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) break;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listen socket gone (EBADF/EINVAL after stop, or fatal)
    }
    set_socket_timeouts(fd);
    bool shed = false;
    {
      const std::lock_guard<std::mutex> lock(queue_mu_);
      if (pending_.size() >= options_.max_pending_connections) {
        shed = true;
      } else {
        pending_.push_back(fd);
      }
    }
    if (shed) {
      ::close(fd);
      registry_.counter("neat_obs_http_connections_dropped_total").add(1);
    } else {
      queue_cv_.notify_one();
    }
  }
}

void HttpExporter::worker_loop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !pending_.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (pending_.empty()) return;  // stopping and drained
      fd = pending_.front();
      pending_.pop_front();
    }
    serve_connection(fd);
    ::close(fd);
  }
}

void HttpExporter::serve_connection(int fd) const {
  // Read until the end of the request head (we never consume bodies) or
  // until the size cap / timeout; a client that sends nothing valid within
  // either bound gets a 400 or a plain close.
  std::string request;
  char buf[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // EOF, timeout or error
    request.append(buf, static_cast<std::size_t>(n));
  }
  if (request.empty()) return;  // connected and left: nothing to answer

  // Request line: METHOD SP TARGET SP HTTP/x.y
  const std::size_t eol = request.find_first_of("\r\n");
  const std::string line = request.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.find(' ', sp1 == std::string::npos ? sp1 : sp1 + 1);
  std::string method, target, version;
  if (sp1 != std::string::npos && sp2 != std::string::npos && sp2 > sp1 + 1) {
    method = line.substr(0, sp1);
    target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    version = line.substr(sp2 + 1);
  }
  if (method.empty() || target.empty() || target.front() != '/' ||
      version.rfind("HTTP/", 0) != 0) {
    Response bad{400, "text/plain; charset=utf-8", "bad request\n"};
    count_request("", 400);
    send_all(fd, render(bad, true));
    return;
  }
  const std::string path = target.substr(0, target.find('?'));
  send_all(fd, handle(method, path));
}

std::string HttpExporter::handle(const std::string& method,
                                 const std::string& path) const {
  Response r;
  if (method != "GET" && method != "HEAD") {
    r = Response{405, "text/plain; charset=utf-8", "only GET is supported\n"};
  } else {
    r = dispatch(path);
  }
  count_request(path, r.code);
  return render(r, method != "HEAD");
}

HttpExporter::Response HttpExporter::dispatch(const std::string& path) const {
  if (path == "/metrics") {
    return {200, "text/plain; version=0.0.4; charset=utf-8",
            registry_.to_prometheus()};
  }
  if (path == "/healthz") return {200, "text/plain; charset=utf-8", "ok\n"};
  if (path == "/readyz") {
    const bool ready = !options_.ready || options_.ready();
    if (ready) return {200, "text/plain; charset=utf-8", "ready\n"};
    return {503, "text/plain; charset=utf-8", "not ready\n"};
  }
  if (path == "/statusz") return {200, "application/json", status_json()};
  if (path == "/tracez") {
    if (tracer_ == nullptr) {
      return {404, "text/plain; charset=utf-8", "no tracer attached\n"};
    }
    return {200, "application/json", tracer_->to_tracez_json(options_.tracez_spans)};
  }
  return {404, "text/plain; charset=utf-8", "not found\n"};
}

std::string HttpExporter::status_json() const {
  const double uptime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  std::string out = "{\"service\":\"neat\",\"pid\":";
  out += std::to_string(::getpid());
  out += ",\"uptime_s\":";
  out += json_number(uptime_s);
  out += ",\"requests_served\":";
  out += std::to_string(served_.load(std::memory_order_relaxed));
  out += ",\"build\":{\"git_sha\":\"";
  out += json_escape(NEAT_GIT_SHA);
  out += "\",\"compiler\":\"";
  out += json_escape(__VERSION__);
  out += "\"}";
  if (options_.status_fields) {
    const std::string extra = options_.status_fields();
    if (!extra.empty()) {
      out += ',';
      out += extra;
    }
  }
  out += '}';
  return out;
}

std::string HttpExporter::render(const Response& r, bool include_body) {
  std::string out = "HTTP/1.1 ";
  out += std::to_string(r.code);
  out += ' ';
  out += reason_phrase(r.code);
  out += "\r\nContent-Type: ";
  out += r.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(r.body.size());
  out += "\r\nConnection: close\r\n\r\n";
  if (include_body) out += r.body;
  return out;
}

void HttpExporter::count_request(const std::string& path, int code) const {
  served_.fetch_add(1, std::memory_order_relaxed);
  // Bound the label cardinality: only the fixed endpoint table appears as a
  // path label, anything else (including malformed requests) is "other".
  const bool known = path == "/metrics" || path == "/healthz" || path == "/readyz" ||
                     path == "/statusz" || path == "/tracez";
  registry_.counter("neat_obs_http_requests_total",
                    {{"path", known ? path : "other"}, {"code", std::to_string(code)}})
      .add(1);
}

}  // namespace neat::obs
