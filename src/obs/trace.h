// Scoped-span pipeline tracer — the timeline half of the observability layer
// (the counter half lives in obs/registry.h).
//
// A span is one named wall-clock interval (steady-clock µs) on one thread,
// opened/closed by the RAII ScopedSpan. Each thread appends finished spans
// to its own log (per-thread mutex, uncontended except during export), so
// the natural nesting of C++ scopes becomes the thread-local span stack —
// Chrome's trace viewer reconstructs the hierarchy from interval
// containment per thread. Spans can carry key/value args (counters,
// cardinalities) that show up in the viewer's detail pane.
//
// Cost model: tracing is off by default; a disabled ScopedSpan is one
// relaxed atomic load in the constructor and a dead branch in the
// destructor, so leaving spans compiled into hot paths is free for
// practical purposes. When enabled, each span is two steady_clock reads
// plus one vector push.
//
// Memory model: each thread log is a bounded ring buffer
// (max_spans_per_thread(), default 64k spans) that overwrites its oldest
// span once full, so a long-lived server with tracing enabled holds the
// most recent spans at a fixed memory ceiling instead of growing without
// bound. Every overwrite bumps spans_dropped() and the process-wide
// `neat_obs_spans_dropped_total` registry counter.
//
// Export is Chrome trace_event JSON (the `{"traceEvents": [...]}` object
// form) loadable in chrome://tracing and https://ui.perfetto.dev, or the
// admin server's /tracez JSON (most recently finished spans first).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace neat::obs {

/// Collects spans from any number of threads. `Tracer::global()` is the
/// process-wide instance the pipeline reports into; tests may construct
/// private tracers. Thread logs outlive their threads, so spans from joined
/// workers are always part of the export.
class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer.
  static Tracer& global();

  /// Turns span collection on or off (off at construction). Spans already
  /// open keep their state; only constructor-time state matters per span.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Names the calling thread in the exported trace (e.g. "refine-worker-3").
  /// No-op when disabled.
  void set_thread_name(const std::string& name);

  /// Total spans currently held, across all threads (bounded by
  /// thread count × max_spans_per_thread()).
  [[nodiscard]] std::size_t span_count() const;

  /// Ring-buffer capacity of each per-thread span log. Lowering it does not
  /// shrink logs that already grew larger; they stop growing and recycle in
  /// place. Capacity 0 is clamped to 1.
  void set_max_spans_per_thread(std::size_t cap) {
    max_spans_.store(cap == 0 ? 1 : cap, std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t max_spans_per_thread() const {
    return max_spans_.load(std::memory_order_relaxed);
  }

  /// Spans overwritten because a thread log was full (cumulative; clear()
  /// does not reset it).
  [[nodiscard]] std::uint64_t spans_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Discards every recorded span (thread logs stay registered).
  void clear();

  /// Chrome trace_event JSON: complete ("ph":"X") events with ts/dur in µs
  /// plus thread_name metadata, wrapped as {"traceEvents": [...]}.
  [[nodiscard]] std::string to_chrome_json() const;

  /// The admin server's /tracez payload: the most recently finished
  /// `max_spans` spans across all threads (newest first) as
  /// {"spans":[{"name","thread","tid","ts_us","dur_us","args"}...],
  ///  "span_count":N,"spans_dropped":M}.
  [[nodiscard]] std::string to_tracez_json(std::size_t max_spans) const;

  /// Microseconds on the tracer's steady clock (process-start epoch).
  [[nodiscard]] static double now_us();

  // Implementation detail, public only for the thread-local log cache in
  // trace.cpp; not part of the supported API.
  struct SpanEvent {
    const char* name;       // static-storage span name
    double ts_us;           // start, µs since process start
    double dur_us;          // duration, µs
    std::string args_json;  // preformatted `"k":v` fragments, comma-joined
  };

  struct ThreadLog {
    std::mutex mu;
    std::uint32_t tid{0};
    std::string name;
    // Ring buffer: grows until max_spans_per_thread(), then `head` walks the
    // oldest slot and new spans overwrite it.
    std::vector<SpanEvent> events;
    std::size_t head{0};
  };

 private:
  friend class ScopedSpan;

  /// The calling thread's log for this tracer, registered on first use.
  ThreadLog& local_log();

  /// Appends `event` to the calling thread's log, recycling the oldest slot
  /// when the ring is full.
  void record(SpanEvent event);

  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> max_spans_{65536};
  std::atomic<std::uint64_t> dropped_{0};
  const std::uint64_t id_;  // distinguishes tracers in the thread-local cache
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<ThreadLog>> logs_;
  std::atomic<std::uint32_t> next_tid_{1};
};

/// A process-unique request-correlation id (monotonic, never 0). Mint one
/// per client request / ingest batch, attach it to every span the request
/// touches (`span.arg("trace_id", id)`) and echo it in the response, so one
/// Perfetto / /tracez search follows one request end-to-end.
[[nodiscard]] std::uint64_t next_trace_id();

/// The ambient trace id of the calling thread (0 = none). Request planes
/// install the id they minted with a TraceIdScope for the duration of the
/// request, and every NEAT_LOG line emitted on the thread carries it
/// automatically — that is how a slow-request log line joins /tracez.
/// Reading is one trivial thread-local load (async-signal-safe).
[[nodiscard]] std::uint64_t current_trace_id();

/// Sets the calling thread's ambient trace id (prefer TraceIdScope).
void set_current_trace_id(std::uint64_t id);

/// RAII ambient trace id: installs `id` for the calling thread on
/// construction and restores the previous value on destruction, so nested
/// scopes (a request handler calling into ingest) unwind correctly.
class TraceIdScope {
 public:
  explicit TraceIdScope(std::uint64_t id);
  ~TraceIdScope();
  TraceIdScope(const TraceIdScope&) = delete;
  TraceIdScope& operator=(const TraceIdScope&) = delete;

 private:
  std::uint64_t prev_;
};

/// RAII span: records [construction, destruction) on the calling thread of
/// `tracer`. Near-zero cost when the tracer is disabled. Spans must be
/// closed on the thread that opened them (automatic with scope-based use).
class ScopedSpan {
 public:
  /// `name` must have static storage duration (string literals).
  explicit ScopedSpan(const char* name, Tracer& tracer = Tracer::global());
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a key/value argument shown in the trace viewer. No-op when
  /// the span is inactive (tracer disabled at construction).
  void arg(const char* key, std::uint64_t v);
  void arg(const char* key, std::int64_t v);
  void arg(const char* key, double v);
  void arg(const char* key, const char* v);
  void arg(const char* key, const std::string& v);

  /// Whether this span is recording (tracer was enabled at construction).
  [[nodiscard]] bool active() const { return tracer_ != nullptr; }

 private:
  void arg_raw(const char* key, std::string value_json);

  Tracer* tracer_{nullptr};  // null when inactive
  const char* name_;
  double start_us_{0.0};
  std::string args_;
};

/// JSON string escaping shared by the exporters (quotes not included).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace neat::obs
