// Process-wide metric registry — the counter half of the observability layer
// (the span half lives in obs/trace.h).
//
// Metrics are named *families* (`neat_<subsystem>_<name>_<unit>`, see
// DESIGN.md §"Observability") of one kind — counter, gauge or histogram —
// fanned out into *series* by label sets, mirroring the Prometheus data
// model. Lookup/creation takes a mutex (cold path, callers cache the
// returned reference); every mutation afterwards is a single relaxed atomic
// on the returned object (hot path, wait-free), so recording from many
// threads never serializes them. Series references stay valid for the
// registry's lifetime.
//
// The histogram reuses the fixed log2-bucket design the serving stack
// introduced (serve::LatencyHistogram is now an alias of obs::Log2Histogram):
// bucket i counts observations in [2^(i-1), 2^i) µs, so recording is one
// fetch_add and percentiles are bucket upper edges.
//
// Exported as Prometheus text exposition format via to_prometheus().
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace neat::obs {

/// Monotonic counter. Thread-safe, wait-free.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins gauge. Thread-safe, wait-free.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Lock-free duration histogram with fixed log2 buckets over microseconds.
/// Bucket 0 counts observations below 1 µs; bucket i (i >= 1) counts
/// [2^(i-1), 2^i) µs; the last bucket absorbs everything above ~35 minutes.
/// Non-finite and negative observations are clamped (NaN/negative to 0,
/// +inf to the last bucket) so a bad duration can never corrupt the sum or
/// index out of the bucket array.
class Log2Histogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  /// Records one observation. Thread-safe, wait-free.
  void record(double seconds);

  /// Total observations recorded.
  [[nodiscard]] std::uint64_t count() const;

  /// Sum of all observations in seconds (µs resolution).
  [[nodiscard]] double sum_seconds() const;

  /// Mean in seconds (0 when empty).
  [[nodiscard]] double mean_seconds() const;

  /// Value at quantile `q` in [0, 1], in seconds, as the upper edge of the
  /// bucket containing that quantile (0 when empty). Conservative: the true
  /// value is at most this.
  [[nodiscard]] double quantile_seconds(double q) const;

  /// Raw count of bucket `i`.
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const;

  /// Upper edge of bucket `i` in seconds (2^i µs).
  [[nodiscard]] static double bucket_upper_seconds(std::size_t i);

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_us_{0};
};

/// One `key="value"` dimension of a metric series.
struct Label {
  std::string key;
  std::string value;

  friend bool operator==(const Label&, const Label&) = default;
};

using Labels = std::vector<Label>;

/// A named collection of metric families. `Registry::global()` is the
/// process-wide instance the pipeline reports into; tests and embedded
/// serving stacks may construct private registries for isolation.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry.
  static Registry& global();

  /// The counter/gauge/histogram series of family `name` with this exact
  /// label set, created on first use. Returned references stay valid for
  /// the registry's lifetime; cache them on hot paths. Throws
  /// neat::PreconditionError when `name` is not a valid metric name or the
  /// family already exists with a different kind.
  Counter& counter(std::string_view name, Labels labels = {});
  Gauge& gauge(std::string_view name, Labels labels = {});
  Log2Histogram& histogram(std::string_view name, Labels labels = {});

  /// Registers the `# HELP` text of family `name` (single line; embedded
  /// newlines are escaped on export). Families without registered help
  /// export a generated "NEAT metric <name>." line, so every family always
  /// carries both HELP and TYPE. May be called before or after the family
  /// is created.
  void set_help(std::string_view name, std::string_view help);

  /// Current value of a counter series, 0 when it does not exist (does not
  /// create it). For tests and bench delta snapshots.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name,
                                            const Labels& labels = {}) const;

  /// Sum (seconds) of a histogram series, 0 when it does not exist.
  [[nodiscard]] double histogram_sum_seconds(std::string_view name,
                                             const Labels& labels = {}) const;

  /// Prometheus text exposition (version 0.0.4) of every series, families
  /// in creation order, each preceded by `# HELP` and `# TYPE` lines.
  /// Histograms export cumulative `_bucket{le=...}` lines plus `_sum` and
  /// `_count`.
  [[nodiscard]] std::string to_prometheus() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Series {
    Labels labels;
    // Exactly one is non-null, matching the family kind.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Log2Histogram> histogram;
  };

  struct Family {
    std::string name;
    Kind kind;
    std::string help;  // empty = export the generated default
    std::vector<std::unique_ptr<Series>> series;  // creation order
  };

  Series& series(std::string_view name, Labels labels, Kind kind);
  [[nodiscard]] const Series* find(std::string_view name, const Labels& labels) const;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Family>> families_;  // creation order
  /// Help registered before its family exists, applied at creation.
  std::vector<std::pair<std::string, std::string>> pending_help_;
};

}  // namespace neat::obs
