#include "mapmatch/look_ahead_matcher.h"

#include <algorithm>
#include <limits>

#include "common/error.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace neat::mapmatch {

namespace {

struct Candidate {
  SegmentId sid;
  Point projected;
  double emission;  ///< Perpendicular distance to the segment.
};

}  // namespace

LookAheadMatcher::LookAheadMatcher(const roadnet::RoadNetwork& net,
                                   const roadnet::SegmentGridIndex& index,
                                   MatchConfig config)
    : net_(net), index_(index), config_(config) {
  NEAT_EXPECT(config_.candidate_radius_m > 0.0, "MatchConfig: radius must be positive");
  NEAT_EXPECT(config_.max_candidates >= 1, "MatchConfig: need at least one candidate");
  NEAT_EXPECT(config_.adjacent_transition_cost >= 0.0 &&
                  config_.disconnected_transition_cost >= 0.0,
              "MatchConfig: transition costs must be non-negative");
}

traj::Trajectory LookAheadMatcher::match(const traj::RawTrace& trace,
                                         MatchStats* stats) const {
  obs::ScopedSpan span("mapmatch.match");
  MatchStats local;  // registry counts are per call, independent of `stats`
  traj::Trajectory out(trace.id);

  // 1. Candidate generation; points without candidates are dropped.
  std::vector<std::vector<Candidate>> candidates;
  std::vector<double> times;
  candidates.reserve(trace.points.size());
  for (const traj::RawPoint& rp : trace.points) {
    const std::vector<SegmentId> near =
        index_.k_nearest_segments(rp.pos, config_.max_candidates, config_.candidate_radius_m);
    if (near.empty()) {
      ++local.dropped_points;
      continue;
    }
    std::vector<Candidate> cs;
    cs.reserve(near.size());
    for (const SegmentId sid : near) {
      double dist = 0.0;
      const double offset = net_.project_to_segment(sid, rp.pos, &dist);
      cs.push_back(Candidate{sid, net_.point_on_segment(sid, offset), dist});
    }
    candidates.push_back(std::move(cs));
    times.push_back(rp.t);
    ++local.matched_points;
  }

  // Point-level accounting: the caller's stats accumulate across calls, the
  // registry gets one bulk update per trace, the span carries the counts.
  const auto record = [&] {
    if (stats != nullptr) {
      stats->matched_points += local.matched_points;
      stats->dropped_points += local.dropped_points;
    }
    obs::Registry& reg = obs::Registry::global();
    reg.counter("neat_mapmatch_traces_total").add(1);
    reg.counter("neat_mapmatch_points_total", {{"outcome", "matched"}})
        .add(local.matched_points);
    reg.counter("neat_mapmatch_points_total", {{"outcome", "dropped"}})
        .add(local.dropped_points);
    span.arg("matched_points", static_cast<std::uint64_t>(local.matched_points));
    span.arg("dropped_points", static_cast<std::uint64_t>(local.dropped_points));
  };
  if (candidates.empty()) {
    record();
    return out;
  }

  // 2. Viterbi over the candidate lattice: the whole remaining trace is the
  // look-ahead window.
  const std::size_t n = candidates.size();
  std::vector<std::vector<double>> cost(n);
  std::vector<std::vector<int>> back(n);
  cost[0].resize(candidates[0].size());
  back[0].assign(candidates[0].size(), -1);
  for (std::size_t c = 0; c < candidates[0].size(); ++c) cost[0][c] = candidates[0][c].emission;

  for (std::size_t i = 1; i < n; ++i) {
    cost[i].assign(candidates[i].size(), std::numeric_limits<double>::infinity());
    back[i].assign(candidates[i].size(), -1);
    for (std::size_t c = 0; c < candidates[i].size(); ++c) {
      const Candidate& cur = candidates[i][c];
      for (std::size_t p = 0; p < candidates[i - 1].size(); ++p) {
        const Candidate& prev = candidates[i - 1][p];
        double transition = 0.0;
        if (prev.sid != cur.sid) {
          transition = net_.are_adjacent(prev.sid, cur.sid)
                           ? config_.adjacent_transition_cost
                           : config_.disconnected_transition_cost;
        }
        const double total = cost[i - 1][p] + transition + cur.emission;
        if (total < cost[i][c]) {
          cost[i][c] = total;
          back[i][c] = static_cast<int>(p);
        }
      }
    }
  }

  // 3. Backtrack the cheapest assignment.
  std::size_t best = 0;
  for (std::size_t c = 1; c < cost[n - 1].size(); ++c) {
    if (cost[n - 1][c] < cost[n - 1][best]) best = c;
  }
  std::vector<std::size_t> chosen(n);
  chosen[n - 1] = best;
  for (std::size_t i = n - 1; i > 0; --i) {
    chosen[i - 1] = static_cast<std::size_t>(back[i][chosen[i]]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const Candidate& c = candidates[i][chosen[i]];
    out.append(traj::Location{c.sid, c.projected, times[i], false});
  }
  record();
  return out;
}

traj::TrajectoryDataset LookAheadMatcher::match_all(
    const std::vector<traj::RawTrace>& traces, MatchStats* stats) const {
  obs::ScopedSpan span("mapmatch.match_all");
  span.arg("traces", static_cast<std::uint64_t>(traces.size()));
  traj::TrajectoryDataset out;
  for (const traj::RawTrace& trace : traces) {
    traj::Trajectory matched = match(trace, stats);
    if (!matched.empty()) out.add(std::move(matched));
  }
  return out;
}

}  // namespace neat::mapmatch
