// Look-ahead map matching (SLAMM substitute, paper §III-A.1 / [14]).
//
// NEAT consumes trajectories whose points carry road-segment ids; raw GPS
// traces must first be map matched. The paper uses SLAMM, a bulk
// look-ahead/look-around matcher that resolves ambiguities (e.g. nearby
// parallel segments) by considering future samples. This implementation
// achieves the same effect with a full-trace Viterbi pass: per-point
// candidate segments come from the spatial grid, emission cost is the
// perpendicular distance, and transition costs prefer staying on a segment
// or crossing to an adjacent one — so the whole remaining trace acts as the
// look-ahead window.
#pragma once

#include <vector>

#include "roadnet/road_network.h"
#include "roadnet/spatial_index.h"
#include "traj/dataset.h"
#include "traj/trajectory.h"

namespace neat::mapmatch {

/// Matcher tuning parameters.
struct MatchConfig {
  double candidate_radius_m{60.0};   ///< Search radius for candidate segments.
  std::size_t max_candidates{6};     ///< Candidates kept per point.
  double adjacent_transition_cost{5.0};      ///< Crossing into an adjacent segment.
  double disconnected_transition_cost{80.0}; ///< Jumping to a non-adjacent segment.
};

/// Per-trace matching statistics.
struct MatchStats {
  std::size_t matched_points{0};
  std::size_t dropped_points{0};  ///< No candidate within the radius.
};

/// Matches raw traces onto a road network. Keeps references to the network
/// and index; do not outlive them.
class LookAheadMatcher {
 public:
  LookAheadMatcher(const roadnet::RoadNetwork& net, const roadnet::SegmentGridIndex& index,
                   MatchConfig config = {});

  /// Matches one trace. Points with no candidate segment within the radius
  /// are dropped; the result can be empty. Matched positions are the
  /// projections onto the chosen segments. `stats` (optional) receives
  /// point-level counts.
  [[nodiscard]] traj::Trajectory match(const traj::RawTrace& trace,
                                       MatchStats* stats = nullptr) const;

  /// Matches a batch; traces that end up empty are omitted.
  [[nodiscard]] traj::TrajectoryDataset match_all(const std::vector<traj::RawTrace>& traces,
                                                  MatchStats* stats = nullptr) const;

 private:
  const roadnet::RoadNetwork& net_;
  const roadnet::SegmentGridIndex& index_;
  MatchConfig config_;
};

}  // namespace neat::mapmatch
