#include "traj/dataset.h"

#include <unordered_set>

#include "common/error.h"
#include "common/string_util.h"

namespace neat::traj {

void TrajectoryDataset::add(Trajectory tr) {
  NEAT_EXPECT(!tr.empty(), "cannot add an empty trajectory to a dataset");
  if (!ids_.insert(tr.id()).second) {
    throw PreconditionError(str_cat("duplicate trajectory id: ", tr.id().value()));
  }
  trajectories_.push_back(std::move(tr));
}

void TrajectoryDataset::reserve(std::size_t n) {
  trajectories_.reserve(n);
  ids_.reserve(n);
}

const Trajectory& TrajectoryDataset::operator[](std::size_t i) const {
  NEAT_EXPECT(i < trajectories_.size(), "dataset index out of range");
  return trajectories_[i];
}

std::size_t TrajectoryDataset::total_points() const {
  std::size_t total = 0;
  for (const Trajectory& tr : trajectories_) total += tr.size();
  return total;
}

DatasetStats TrajectoryDataset::stats() const {
  DatasetStats st;
  st.num_trajectories = trajectories_.size();
  st.num_points = total_points();
  if (trajectories_.empty()) return st;
  double length_sum = 0.0;
  double duration_sum = 0.0;
  for (const Trajectory& tr : trajectories_) {
    length_sum += tr.path_length();
    duration_sum += tr.duration();
  }
  const auto n = static_cast<double>(trajectories_.size());
  st.avg_points_per_trajectory = static_cast<double>(st.num_points) / n;
  st.avg_path_length_m = length_sum / n;
  st.avg_duration_s = duration_sum / n;
  return st;
}

}  // namespace neat::traj
