#include "traj/trajectory.h"

#include "common/error.h"
#include "common/string_util.h"

namespace neat::traj {

Trajectory::Trajectory(TrajectoryId id, std::vector<Location> points) : id_(id) {
  points_.reserve(points.size());
  for (const Location& loc : points) append(loc);
}

void Trajectory::append(const Location& loc) {
  if (!points_.empty()) {
    NEAT_EXPECT(loc.t >= points_.back().t,
                str_cat("trajectory ", id_.value(), ": timestamps must be non-decreasing (",
                        loc.t, " after ", points_.back().t, ")"));
  }
  points_.push_back(loc);
}

const Location& Trajectory::point(std::size_t i) const {
  NEAT_EXPECT(i < points_.size(), "trajectory point index out of range");
  return points_[i];
}

const Location& Trajectory::front() const {
  NEAT_EXPECT(!points_.empty(), "front() on an empty trajectory");
  return points_.front();
}

const Location& Trajectory::back() const {
  NEAT_EXPECT(!points_.empty(), "back() on an empty trajectory");
  return points_.back();
}

double Trajectory::path_length() const {
  double total = 0.0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    total += distance(points_[i - 1].pos, points_[i].pos);
  }
  return total;
}

double Trajectory::duration() const {
  if (points_.size() < 2) return 0.0;
  return points_.back().t - points_.front().t;
}

}  // namespace neat::traj
