#include "traj/io.h"

#include <array>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/csv.h"
#include "common/error.h"
#include "common/string_util.h"

namespace neat::traj {

namespace {

/// Splits one raw CSV line into exactly 7 unquoted fields without
/// allocating. Returns false when the line is blank or does not have 7
/// fields (the caller reports the line number).
bool split_row7(std::string_view line, std::array<std::string_view, 7>& fields) {
  std::size_t n = 0;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    const std::string_view field = comma == std::string_view::npos
                                       ? line.substr(start)
                                       : line.substr(start, comma - start);
    if (n == 7) return false;
    fields[n++] = field;
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return n == 7;
}

Location parse_location(const std::array<std::string_view, 7>& row) {
  Location loc;
  loc.sid = SegmentId(static_cast<std::int32_t>(parse_int(row[2])));
  loc.pos = {parse_double(row[3]), parse_double(row[4])};
  loc.t = parse_double(row[5]);
  loc.junction_point = parse_int(row[6]) != 0;
  return loc;
}

}  // namespace

void save_dataset(const TrajectoryDataset& data, std::ostream& out) {
  CsvWriter writer(out);
  for (const Trajectory& tr : data) {
    for (std::size_t i = 0; i < tr.size(); ++i) {
      const Location& loc = tr.point(i);
      writer.write_row({std::to_string(tr.id().value()), std::to_string(i),
                        std::to_string(loc.sid.value()), format_fixed(loc.pos.x, 3),
                        format_fixed(loc.pos.y, 3), format_fixed(loc.t, 3),
                        loc.junction_point ? "1" : "0"});
    }
  }
}

void save_dataset(const TrajectoryDataset& data, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error(str_cat("cannot open '", path, "' for writing"));
  save_dataset(data, out);
}

void for_each_trajectory(std::istream& in, const std::function<void(Trajectory&&)>& fn) {
  std::string line;
  std::array<std::string_view, 7> row;
  std::vector<std::string> quoted_row;  // slow-path scratch
  Trajectory current;
  bool has_current = false;
  std::size_t prev_size = 0;  // reserve hint: trajectories of one dataset are alike
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::string_view view = line;
    if (trim(view).empty()) continue;
    if (view.find('"') != std::string_view::npos) {
      // Quoted fields are legal CSV but never produced by save_dataset;
      // parse this row through the full RFC-4180 reader.
      std::istringstream row_in{line};
      CsvReader reader(row_in);
      if (!reader.read_row(quoted_row) || quoted_row.size() != 7) {
        throw ParseError(str_cat("line ", line_no, ": location row needs 7 fields"));
      }
      for (std::size_t i = 0; i < 7; ++i) row[i] = quoted_row[i];
    } else if (!split_row7(view, row)) {
      throw ParseError(str_cat("line ", line_no, ": location row needs 7 fields"));
    }
    const auto trid = TrajectoryId(parse_int(row[0]));
    if (!has_current || current.id() != trid) {
      if (has_current) {
        prev_size = current.size();
        fn(std::move(current));
      }
      current = Trajectory(trid);
      current.reserve(prev_size);
      has_current = true;
    }
    try {
      current.append(parse_location(row));
    } catch (const PreconditionError& e) {
      throw ParseError(str_cat("line ", line_no, ": ", e.what()));
    }
  }
  if (has_current) fn(std::move(current));
}

TrajectoryDataset load_dataset(std::istream& in) {
  TrajectoryDataset data;
  for_each_trajectory(in, [&data](Trajectory&& tr) { data.add(std::move(tr)); });
  return data;
}

TrajectoryDataset load_dataset(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error(str_cat("cannot open '", path, "' for reading"));
  return load_dataset(in);
}

}  // namespace neat::traj
