#include "traj/io.h"

#include <fstream>
#include <vector>

#include "common/csv.h"
#include "common/error.h"
#include "common/string_util.h"

namespace neat::traj {

void save_dataset(const TrajectoryDataset& data, std::ostream& out) {
  CsvWriter writer(out);
  for (const Trajectory& tr : data) {
    for (std::size_t i = 0; i < tr.size(); ++i) {
      const Location& loc = tr.point(i);
      writer.write_row({std::to_string(tr.id().value()), std::to_string(i),
                        std::to_string(loc.sid.value()), format_fixed(loc.pos.x, 3),
                        format_fixed(loc.pos.y, 3), format_fixed(loc.t, 3),
                        loc.junction_point ? "1" : "0"});
    }
  }
}

void save_dataset(const TrajectoryDataset& data, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error(str_cat("cannot open '", path, "' for writing"));
  save_dataset(data, out);
}

TrajectoryDataset load_dataset(std::istream& in) {
  CsvReader reader(in);
  std::vector<std::string> row;
  TrajectoryDataset data;
  Trajectory current;
  bool has_current = false;
  std::size_t line = 0;
  while (reader.read_row(row)) {
    ++line;
    if (row.empty() || (row.size() == 1 && trim(row[0]).empty())) continue;
    if (row.size() != 7) {
      throw ParseError(str_cat("line ", line, ": location row needs 7 fields"));
    }
    const auto trid = TrajectoryId(parse_int(row[0]));
    Location loc;
    loc.sid = SegmentId(static_cast<std::int32_t>(parse_int(row[2])));
    loc.pos = {parse_double(row[3]), parse_double(row[4])};
    loc.t = parse_double(row[5]);
    loc.junction_point = parse_int(row[6]) != 0;
    if (!has_current || current.id() != trid) {
      if (has_current) data.add(std::move(current));
      current = Trajectory(trid);
      has_current = true;
    }
    try {
      current.append(loc);
    } catch (const PreconditionError& e) {
      throw ParseError(str_cat("line ", line, ": ", e.what()));
    }
  }
  if (has_current) data.add(std::move(current));
  return data;
}

TrajectoryDataset load_dataset(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error(str_cat("cannot open '", path, "' for reading"));
  return load_dataset(in);
}

}  // namespace neat::traj
