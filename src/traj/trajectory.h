// Trajectories of mobile objects travelling in a road network (paper §II).
//
// A road-network location is (sid, x, y, t): the road segment the object is
// on, its planar position, and the sample timestamp. A trajectory is a
// time-ordered sequence of locations; the temporal order encodes the
// direction of movement. Locations inserted later by the system (junction
// points added during t-fragment extraction, or by the map matcher) are
// flagged `junction_point` so they remain distinguishable from raw samples,
// as the paper requires.
#pragma once

#include <vector>

#include "common/geometry.h"
#include "common/ids.h"

namespace neat::traj {

/// One recorded (or inserted) road-network location.
struct Location {
  SegmentId sid;               ///< Road segment the object resides on.
  Point pos;                   ///< Planar position in metres.
  double t{0.0};               ///< Timestamp in seconds.
  bool junction_point{false};  ///< True for system-inserted junction points.
};

/// A time-ordered sequence of locations of one mobile object.
class Trajectory {
 public:
  Trajectory() = default;
  explicit Trajectory(TrajectoryId id) : id_(id) {}
  Trajectory(TrajectoryId id, std::vector<Location> points);

  [[nodiscard]] TrajectoryId id() const { return id_; }
  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] bool empty() const { return points_.empty(); }

  /// Appends a location; throws neat::PreconditionError when its timestamp
  /// precedes the current last point (time order is the class invariant).
  void append(const Location& loc);

  /// Pre-allocates capacity for `n` points (loaders and converters).
  void reserve(std::size_t n) { points_.reserve(n); }

  [[nodiscard]] const Location& point(std::size_t i) const;
  [[nodiscard]] const Location& front() const;
  [[nodiscard]] const Location& back() const;
  [[nodiscard]] const std::vector<Location>& points() const { return points_; }

  /// Total Euclidean path length over the sample positions (metres).
  [[nodiscard]] double path_length() const;

  /// Duration between first and last sample (seconds); 0 when < 2 points.
  [[nodiscard]] double duration() const;

 private:
  TrajectoryId id_;
  std::vector<Location> points_;
};

/// A raw positioning sample before map matching: no segment id yet.
struct RawPoint {
  Point pos;
  double t{0.0};
};

/// A raw GPS trace (input to the map matcher).
struct RawTrace {
  TrajectoryId id;
  std::vector<RawPoint> points;
};

}  // namespace neat::traj
