// Binary columnar (SoA) trajectory format — the on-disk half of the
// out-of-core data plane (paper §II-C: clients upload trajectories to a
// server that clustering then reads at scale).
//
// A `.neatcol` file stores a trajectory dataset as per-column blobs instead
// of row-oriented CSV text, so a reader can memory-map the file and page in
// only the columns (and the byte ranges) a scan actually touches:
//
//   [header]   magic "NEATCOL\1", version, trajectory/point counts, and the
//              absolute byte offset of every section (8-byte aligned)
//   [trid]     i64   per trajectory: trajectory id
//   [index]    u64   per trajectory + 1: start index of its points (the
//                    per-trajectory offsets index; entry i..i+1 delimits
//                    trajectory i's rows in every point column)
//   [t]        f64   per point: sample timestamp (seconds)
//   [seg]      i32   per point: road segment id (SegmentId representation)
//   [x]        f64   per point: planar x (metres)
//   [y]        f64   per point: planar y (metres)
//   [flags]    u8    per point: bit 0 = system-inserted junction point
//   [footer]   u64 checksum (FNV-1a over the per-section FNV-1a digests, in
//              section order), u64 end magic "NEATEND\1"; 8-aligned like
//              every section, so the file ends at the footer's 16 bytes
//
// The writer streams: appended trajectories go straight to per-column spill
// files and only the (small) per-trajectory index is kept in memory, so a
// conversion or generation run is bounded-memory regardless of dataset
// size. finish() assembles the final file and computes the checksum from
// the running per-column digests — no second pass over the data.
//
// Values round-trip bit-exactly (doubles are stored verbatim), so a
// pipeline run over the columnar file is bit-identical to one over the
// source CSV. Byte order is the host's (little-endian on every platform we
// build); the magic doubles as an endianness check.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "traj/dataset.h"
#include "traj/trajectory.h"

namespace neat::traj {

inline constexpr std::uint64_t kColumnarMagic = 0x014C4F435441454EULL;     // "NEATCOL\1" LE
inline constexpr std::uint64_t kColumnarEndMagic = 0x01444E455441454EULL;  // "NEATEND\1" LE
inline constexpr std::uint32_t kColumnarVersion = 1;

/// Fixed-size file header (see the layout comment above). All section
/// offsets are absolute byte positions, 8-byte aligned.
struct ColumnarHeader {
  std::uint64_t magic{kColumnarMagic};
  std::uint32_t version{kColumnarVersion};
  std::uint32_t flags{0};  ///< Reserved; must be 0 in version 1.
  std::uint64_t num_trajectories{0};
  std::uint64_t num_points{0};
  std::uint64_t off_trid{0};
  std::uint64_t off_index{0};
  std::uint64_t off_t{0};
  std::uint64_t off_seg{0};
  std::uint64_t off_x{0};
  std::uint64_t off_y{0};
  std::uint64_t off_flags{0};
};
static_assert(sizeof(ColumnarHeader) == 88, "on-disk header layout must be stable");

/// Trailing footer: checksum then end magic.
struct ColumnarFooter {
  std::uint64_t checksum{0};
  std::uint64_t end_magic{kColumnarEndMagic};
};
static_assert(sizeof(ColumnarFooter) == 16, "on-disk footer layout must be stable");

/// Incremental FNV-1a (64-bit), the format's checksum primitive.
class Fnv1a {
 public:
  void update(const void* data, std::size_t n);
  [[nodiscard]] std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_{0xcbf29ce484222325ULL};
};

/// Streams a trajectory dataset into a `.neatcol` file with bounded memory.
/// Point columns spill to `<path>.tmp.<col>` files as trajectories are
/// appended; finish() assembles the final file and removes the spill files.
/// Not thread-safe; append trajectories from one thread.
class ColumnarWriter {
 public:
  /// Opens the spill files next to `path`. Throws neat::Error when any
  /// cannot be created.
  explicit ColumnarWriter(std::string path);

  /// Removes the spill files (and never the final file) when finish() was
  /// not reached.
  ~ColumnarWriter();

  ColumnarWriter(const ColumnarWriter&) = delete;
  ColumnarWriter& operator=(const ColumnarWriter&) = delete;

  /// Appends one trajectory. Throws neat::PreconditionError on an empty
  /// trajectory or a duplicate trajectory id.
  void append(const Trajectory& tr);

  /// Column-level append, for generators that never materialize a
  /// Trajectory. `n` must be > 0 and all arrays must hold `n` values;
  /// timestamps must be non-decreasing.
  void append(TrajectoryId trid, const double* ts, const std::int32_t* segs,
              const double* xs, const double* ys, const std::uint8_t* flags,
              std::size_t n);

  [[nodiscard]] std::size_t trajectories() const { return trids_.size(); }
  [[nodiscard]] std::size_t points() const { return num_points_; }

  /// Writes header + index + columns + footer to the final path and removes
  /// the spill files. Must be called exactly once; throws neat::Error on
  /// I/O failure.
  void finish();

 private:
  struct Spill;  // one per point column: stream + running digest

  std::string path_;
  std::vector<std::unique_ptr<Spill>> spills_;
  std::vector<std::int64_t> trids_;
  std::vector<std::uint64_t> index_;  ///< Point start per trajectory.
  std::unordered_set<std::int64_t> seen_ids_;
  std::size_t num_points_{0};
  bool finished_{false};
};

/// Statistics of one CSV -> columnar conversion.
struct ColumnarConvertStats {
  std::size_t trajectories{0};
  std::size_t points{0};
};

/// Streams a trajectory CSV (the traj::save_dataset format) into a columnar
/// file with bounded memory: one trajectory is in flight at a time. Throws
/// neat::ParseError on malformed CSV, neat::Error on I/O failure.
ColumnarConvertStats convert_csv_to_columnar(std::istream& in, const std::string& out_path);

/// File variant. Throws neat::Error when `csv_path` cannot be opened.
ColumnarConvertStats convert_csv_to_columnar(const std::string& csv_path,
                                             const std::string& out_path);

/// Writes an in-memory dataset as a columnar file (tests, small exports).
void save_columnar(const TrajectoryDataset& data, const std::string& path);

}  // namespace neat::traj
