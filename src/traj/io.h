// CSV persistence for trajectory datasets.
//
// Format: one row per location sample, grouped by trajectory and ordered by
// sequence number:
//   <trid>,<seq>,<sid>,<x>,<y>,<t>,<junction 0|1>
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

#include "traj/dataset.h"

namespace neat::traj {

/// Writes the dataset to a stream.
void save_dataset(const TrajectoryDataset& data, std::ostream& out);

/// Writes the dataset to a file. Throws neat::Error when the file cannot be
/// opened.
void save_dataset(const TrajectoryDataset& data, const std::string& path);

/// Streams a trajectory CSV, invoking `fn` once per completed trajectory in
/// file order — the bounded-memory primitive behind load_dataset and the
/// CSV -> columnar converter (only one trajectory is in flight at a time).
/// Rows are parsed with std::from_chars and no per-field allocation; rows
/// containing quoted fields fall back to the RFC-4180 CSV reader. Throws
/// neat::ParseError on malformed data.
void for_each_trajectory(std::istream& in, const std::function<void(Trajectory&&)>& fn);

/// Reads a dataset from a stream. Throws neat::ParseError on malformed data.
[[nodiscard]] TrajectoryDataset load_dataset(std::istream& in);

/// Reads a dataset from a file. Throws neat::Error / neat::ParseError.
[[nodiscard]] TrajectoryDataset load_dataset(const std::string& path);

}  // namespace neat::traj
