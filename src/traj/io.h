// CSV persistence for trajectory datasets.
//
// Format: one row per location sample, grouped by trajectory and ordered by
// sequence number:
//   <trid>,<seq>,<sid>,<x>,<y>,<t>,<junction 0|1>
#pragma once

#include <iosfwd>
#include <string>

#include "traj/dataset.h"

namespace neat::traj {

/// Writes the dataset to a stream.
void save_dataset(const TrajectoryDataset& data, std::ostream& out);

/// Writes the dataset to a file. Throws neat::Error when the file cannot be
/// opened.
void save_dataset(const TrajectoryDataset& data, const std::string& path);

/// Reads a dataset from a stream. Throws neat::ParseError on malformed data.
[[nodiscard]] TrajectoryDataset load_dataset(std::istream& in);

/// Reads a dataset from a file. Throws neat::Error / neat::ParseError.
[[nodiscard]] TrajectoryDataset load_dataset(const std::string& path);

}  // namespace neat::traj
