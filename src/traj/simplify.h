// Trajectory simplification (Douglas–Peucker).
//
// A preprocessing utility for storage/transmission-constrained deployments
// (the NEAT client/server architecture of §II-C uploads trajectories from
// mobile devices): thins raw samples while bounding the geometric error.
// System-inserted junction points are always preserved, so simplification
// composes safely with Phase 1.
#pragma once

#include <cstddef>
#include <vector>

#include "common/geometry.h"
#include "traj/trajectory.h"

namespace neat::traj {

/// Indices of the points kept by Douglas–Peucker with the given tolerance
/// (metres). The first and last indices are always kept; the result is
/// strictly increasing. Tolerance 0 keeps everything except exactly
/// collinear interiors.
[[nodiscard]] std::vector<std::size_t> douglas_peucker_indices(
    const std::vector<Point>& pts, double tolerance_m);

/// Simplifies a trajectory: keeps Douglas–Peucker-selected samples plus
/// every `junction_point` location. Throws neat::PreconditionError on a
/// negative tolerance.
[[nodiscard]] Trajectory simplify(const Trajectory& tr, double tolerance_m);

}  // namespace neat::traj
