#include "traj/simplify.h"

#include <algorithm>

#include "common/error.h"

namespace neat::traj {

namespace {

/// Recursive Douglas–Peucker over pts[lo..hi] (inclusive); marks kept
/// indices in `keep`.
void dp_recurse(const std::vector<Point>& pts, std::size_t lo, std::size_t hi,
                double tolerance, std::vector<bool>& keep) {
  if (hi <= lo + 1) return;
  double worst = -1.0;
  std::size_t worst_index = lo;
  for (std::size_t i = lo + 1; i < hi; ++i) {
    const double d = point_segment_distance(pts[i], pts[lo], pts[hi]);
    if (d > worst) {
      worst = d;
      worst_index = i;
    }
  }
  if (worst > tolerance) {
    keep[worst_index] = true;
    dp_recurse(pts, lo, worst_index, tolerance, keep);
    dp_recurse(pts, worst_index, hi, tolerance, keep);
  }
}

}  // namespace

std::vector<std::size_t> douglas_peucker_indices(const std::vector<Point>& pts,
                                                 double tolerance_m) {
  NEAT_EXPECT(tolerance_m >= 0.0, "douglas_peucker: tolerance must be non-negative");
  std::vector<std::size_t> out;
  if (pts.empty()) return out;
  if (pts.size() == 1) return {0};
  std::vector<bool> keep(pts.size(), false);
  keep.front() = true;
  keep.back() = true;
  dp_recurse(pts, 0, pts.size() - 1, tolerance_m, keep);
  for (std::size_t i = 0; i < keep.size(); ++i) {
    if (keep[i]) out.push_back(i);
  }
  return out;
}

Trajectory simplify(const Trajectory& tr, double tolerance_m) {
  NEAT_EXPECT(tolerance_m >= 0.0, "simplify: tolerance must be non-negative");
  if (tr.size() <= 2) return tr;
  std::vector<Point> pts;
  pts.reserve(tr.size());
  for (const Location& loc : tr.points()) pts.push_back(loc.pos);
  const std::vector<std::size_t> kept = douglas_peucker_indices(pts, tolerance_m);

  std::vector<bool> keep(tr.size(), false);
  for (const std::size_t i : kept) keep[i] = true;
  for (std::size_t i = 0; i < tr.size(); ++i) {
    if (tr.point(i).junction_point) keep[i] = true;  // Phase 1 anchors survive
  }
  Trajectory out(tr.id());
  for (std::size_t i = 0; i < tr.size(); ++i) {
    if (keep[i]) out.append(tr.point(i));
  }
  return out;
}

}  // namespace neat::traj
