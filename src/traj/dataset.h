// Collections of trajectories plus dataset-level statistics (Table II shape).
#pragma once

#include <unordered_set>
#include <vector>

#include "traj/trajectory.h"

namespace neat::traj {

/// Aggregate statistics of a dataset, as reported in the paper's Table II.
struct DatasetStats {
  std::size_t num_trajectories{0};
  std::size_t num_points{0};  ///< Total location samples across trajectories.
  double avg_points_per_trajectory{0.0};
  double avg_path_length_m{0.0};
  double avg_duration_s{0.0};
};

/// An ordered collection of trajectories. Trajectory ids need not be dense
/// but must be unique (checked on insert).
class TrajectoryDataset {
 public:
  TrajectoryDataset() = default;

  /// Adds a trajectory. Throws neat::PreconditionError for duplicate ids or
  /// empty trajectories. O(1) amortized — the id set is indexed.
  void add(Trajectory tr);

  /// Pre-allocates capacity for `n` trajectories (bulk loaders).
  void reserve(std::size_t n);

  [[nodiscard]] std::size_t size() const { return trajectories_.size(); }
  [[nodiscard]] bool empty() const { return trajectories_.empty(); }
  [[nodiscard]] const Trajectory& operator[](std::size_t i) const;

  [[nodiscard]] auto begin() const { return trajectories_.begin(); }
  [[nodiscard]] auto end() const { return trajectories_.end(); }

  /// Total number of location samples across all trajectories.
  [[nodiscard]] std::size_t total_points() const;

  [[nodiscard]] DatasetStats stats() const;

 private:
  std::vector<Trajectory> trajectories_;
  std::unordered_set<TrajectoryId> ids_;
};

}  // namespace neat::traj
