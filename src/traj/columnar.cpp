#include "traj/columnar.h"

#include <cstdio>
#include <fstream>
#include <istream>

#include "common/error.h"
#include "common/string_util.h"
#include "traj/io.h"

namespace neat::traj {

namespace {

/// Bytes of zero padding to reach the next 8-byte boundary after `pos`.
std::uint64_t pad8(std::uint64_t pos) { return (8 - pos % 8) % 8; }

void write_bytes(std::ostream& out, const void* data, std::size_t n) {
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
}

void write_padding(std::ostream& out, std::uint64_t n) {
  static constexpr char kZeros[8] = {};
  write_bytes(out, kZeros, n);
}

}  // namespace

void Fnv1a::update(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h_ ^= p[i];
    h_ *= 0x100000001b3ULL;
  }
}

/// One spilled point column: the append stream plus its running digest.
struct ColumnarWriter::Spill {
  explicit Spill(std::string p) : path(std::move(p)), out(path, std::ios::binary) {
    if (!out) throw Error(str_cat("cannot open spill file '", path, "' for writing"));
  }

  void write(const void* data, std::size_t n) {
    write_bytes(out, data, n);
    digest.update(data, n);
    bytes += n;
  }

  std::string path;
  std::ofstream out;
  Fnv1a digest;
  std::uint64_t bytes{0};
};

ColumnarWriter::ColumnarWriter(std::string path) : path_(std::move(path)) {
  static constexpr const char* kCols[] = {"t", "seg", "x", "y", "flags"};
  spills_.reserve(5);
  for (const char* col : kCols) {
    spills_.push_back(std::make_unique<Spill>(str_cat(path_, ".tmp.", col)));
  }
  index_.push_back(0);
}

ColumnarWriter::~ColumnarWriter() {
  for (const auto& spill : spills_) {
    if (spill) std::remove(spill->path.c_str());
  }
}

void ColumnarWriter::append(const Trajectory& tr) {
  NEAT_EXPECT(!tr.empty(), "ColumnarWriter: cannot append an empty trajectory");
  // Per-trajectory column staging (reused across calls via static capacity
  // growth is not worth the state; trajectories are short).
  std::vector<double> ts, xs, ys;
  std::vector<std::int32_t> segs;
  std::vector<std::uint8_t> flags;
  const std::size_t n = tr.size();
  ts.reserve(n);
  segs.reserve(n);
  xs.reserve(n);
  ys.reserve(n);
  flags.reserve(n);
  for (const Location& loc : tr.points()) {
    ts.push_back(loc.t);
    segs.push_back(loc.sid.value());
    xs.push_back(loc.pos.x);
    ys.push_back(loc.pos.y);
    flags.push_back(loc.junction_point ? 1 : 0);
  }
  append(tr.id(), ts.data(), segs.data(), xs.data(), ys.data(), flags.data(), n);
}

void ColumnarWriter::append(TrajectoryId trid, const double* ts, const std::int32_t* segs,
                            const double* xs, const double* ys, const std::uint8_t* flags,
                            std::size_t n) {
  NEAT_EXPECT(!finished_, "ColumnarWriter: append after finish()");
  NEAT_EXPECT(n > 0, "ColumnarWriter: cannot append an empty trajectory");
  NEAT_EXPECT(seen_ids_.insert(trid.value()).second,
              str_cat("ColumnarWriter: duplicate trajectory id ", trid.value()));
  for (std::size_t i = 1; i < n; ++i) {
    NEAT_EXPECT(ts[i] >= ts[i - 1],
                str_cat("ColumnarWriter: trajectory ", trid.value(),
                        ": timestamps must be non-decreasing"));
  }
  spills_[0]->write(ts, n * sizeof(double));
  spills_[1]->write(segs, n * sizeof(std::int32_t));
  spills_[2]->write(xs, n * sizeof(double));
  spills_[3]->write(ys, n * sizeof(double));
  spills_[4]->write(flags, n * sizeof(std::uint8_t));
  trids_.push_back(trid.value());
  num_points_ += n;
  index_.push_back(num_points_);
}

void ColumnarWriter::finish() {
  NEAT_EXPECT(!finished_, "ColumnarWriter: finish() called twice");
  finished_ = true;

  ColumnarHeader header;
  header.num_trajectories = trids_.size();
  header.num_points = num_points_;
  std::uint64_t pos = sizeof(ColumnarHeader);
  const auto place = [&pos](std::uint64_t bytes) {
    pos += pad8(pos);
    const std::uint64_t at = pos;
    pos += bytes;
    return at;
  };
  header.off_trid = place(trids_.size() * sizeof(std::int64_t));
  header.off_index = place(index_.size() * sizeof(std::uint64_t));
  header.off_t = place(spills_[0]->bytes);
  header.off_seg = place(spills_[1]->bytes);
  header.off_x = place(spills_[2]->bytes);
  header.off_y = place(spills_[3]->bytes);
  header.off_flags = place(spills_[4]->bytes);
  pos += pad8(pos);  // footer is 8-aligned like every section

  // Checksum: FNV-1a over the per-section digests, in section order.
  Fnv1a trid_digest;
  trid_digest.update(trids_.data(), trids_.size() * sizeof(std::int64_t));
  Fnv1a index_digest;
  index_digest.update(index_.data(), index_.size() * sizeof(std::uint64_t));
  Fnv1a combined;
  const auto chain = [&combined](const Fnv1a& section) {
    const std::uint64_t d = section.digest();
    combined.update(&d, sizeof(d));
  };
  chain(trid_digest);
  chain(index_digest);
  for (const auto& spill : spills_) chain(spill->digest);

  std::ofstream out(path_, std::ios::binary);
  if (!out) throw Error(str_cat("cannot open '", path_, "' for writing"));
  std::uint64_t written = 0;
  const auto emit = [&](const void* data, std::uint64_t n) {
    write_bytes(out, data, n);
    written += n;
  };
  const auto emit_section = [&](std::uint64_t off, const void* data, std::uint64_t n) {
    write_padding(out, off - written);
    written = off;
    emit(data, n);
  };
  emit(&header, sizeof(header));
  emit_section(header.off_trid, trids_.data(), trids_.size() * sizeof(std::int64_t));
  emit_section(header.off_index, index_.data(), index_.size() * sizeof(std::uint64_t));

  const std::uint64_t col_offsets[] = {header.off_t, header.off_seg, header.off_x,
                                       header.off_y, header.off_flags};
  std::vector<char> buf(1 << 20);
  for (std::size_t c = 0; c < spills_.size(); ++c) {
    Spill& spill = *spills_[c];
    spill.out.flush();
    if (!spill.out) throw Error(str_cat("write to spill file '", spill.path, "' failed"));
    spill.out.close();
    std::ifstream in(spill.path, std::ios::binary);
    if (!in) throw Error(str_cat("cannot reopen spill file '", spill.path, "'"));
    write_padding(out, col_offsets[c] - written);
    written = col_offsets[c];
    std::uint64_t copied = 0;
    while (in) {
      in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
      const std::streamsize got = in.gcount();
      if (got <= 0) break;
      emit(buf.data(), static_cast<std::uint64_t>(got));
      copied += static_cast<std::uint64_t>(got);
    }
    if (copied != spill.bytes) {
      throw Error(str_cat("spill file '", spill.path, "' is ", copied, " bytes, expected ",
                          spill.bytes));
    }
  }

  ColumnarFooter footer;
  footer.checksum = combined.digest();
  write_padding(out, pos - written);
  written = pos;
  emit(&footer, sizeof(footer));
  out.flush();
  if (!out) throw Error(str_cat("write to '", path_, "' failed"));
  out.close();
  for (const auto& spill : spills_) std::remove(spill->path.c_str());
}

ColumnarConvertStats convert_csv_to_columnar(std::istream& in, const std::string& out_path) {
  ColumnarWriter writer(out_path);
  for_each_trajectory(in, [&writer](Trajectory&& tr) { writer.append(tr); });
  ColumnarConvertStats stats;
  stats.trajectories = writer.trajectories();
  stats.points = writer.points();
  writer.finish();
  return stats;
}

ColumnarConvertStats convert_csv_to_columnar(const std::string& csv_path,
                                             const std::string& out_path) {
  std::ifstream in(csv_path);
  if (!in) throw Error(str_cat("cannot open '", csv_path, "' for reading"));
  return convert_csv_to_columnar(in, out_path);
}

void save_columnar(const TrajectoryDataset& data, const std::string& path) {
  ColumnarWriter writer(path);
  for (const Trajectory& tr : data) writer.append(tr);
  writer.finish();
}

}  // namespace neat::traj
