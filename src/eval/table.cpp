#include "eval/table.h"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "common/csv.h"
#include "common/error.h"
#include "common/string_util.h"

namespace neat::eval {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

void TextTable::print(std::ostream& out) const {
  std::size_t cols = header_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());
  std::vector<std::size_t> width(cols, 0);
  const auto measure = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) width[i] = std::max(width[i], row[i].size());
  };
  measure(header_);
  for (const auto& row : rows_) measure(row);

  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < cols; ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      out << "  " << cell << std::string(width[i] - cell.size(), ' ');
    }
    out << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (const std::size_t w : width) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TextTable::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error(str_cat("cannot open '", path, "' for writing"));
  CsvWriter writer(out);
  writer.write_row(header_);
  for (const auto& row : rows_) writer.write_row(row);
}

}  // namespace neat::eval
