// Cluster-quality metrics reported by the paper's evaluation (Figure 5).
#pragma once

#include <cstddef>
#include <vector>

#include "core/clusterer.h"
#include "traclus/traclus.h"

namespace neat::eval {

/// Average/maximum length statistics over a set of representative routes.
struct RouteLengthStats {
  std::size_t count{0};
  double avg_m{0.0};
  double max_m{0.0};
};

/// Statistics over NEAT flow-cluster representative routes.
[[nodiscard]] RouteLengthStats flow_route_stats(const std::vector<FlowCluster>& flows);

/// Statistics over TraClus representative trajectories (clusters whose
/// representative is empty are counted with length 0).
[[nodiscard]] RouteLengthStats traclus_route_stats(const std::vector<traclus::Cluster>& cs);

/// Fraction of all extracted t-fragments that ended up in kept flows (the
/// rest were filtered as minor flows).
[[nodiscard]] double fragment_coverage(const Result& result);

/// Fraction of dataset trajectories participating in at least one kept flow.
[[nodiscard]] double trajectory_coverage(const Result& result, std::size_t num_trajectories);

}  // namespace neat::eval
