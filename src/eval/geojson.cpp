#include "eval/geojson.h"

#include <sstream>

#include "common/string_util.h"

namespace neat::eval {

namespace {

void open_collection(std::ostringstream& os) {
  os << "{\"type\":\"FeatureCollection\",\"features\":[";
}

void close_collection(std::ostringstream& os) { os << "]}"; }

void line_string(std::ostringstream& os, const std::vector<Point>& pts,
                 const std::string& properties, bool first) {
  if (!first) os << ',';
  os << "{\"type\":\"Feature\",\"geometry\":{\"type\":\"LineString\",\"coordinates\":[";
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (i > 0) os << ',';
    os << '[' << format_fixed(pts[i].x, 2) << ',' << format_fixed(pts[i].y, 2) << ']';
  }
  os << "]},\"properties\":{" << properties << "}}";
}

}  // namespace

std::string network_to_geojson(const roadnet::RoadNetwork& net) {
  std::ostringstream os;
  open_collection(os);
  for (std::size_t i = 0; i < net.segment_count(); ++i) {
    const auto sid = SegmentId(static_cast<std::int32_t>(i));
    const roadnet::Segment& s = net.segment(sid);
    line_string(os, {net.node(s.a).pos, net.node(s.b).pos},
                str_cat("\"sid\":", i, ",\"speed_mps\":", format_fixed(s.speed_limit, 2),
                        ",\"length_m\":", format_fixed(s.length, 2),
                        ",\"bidirectional\":", s.bidirectional ? "true" : "false"),
                i == 0);
  }
  close_collection(os);
  return os.str();
}

std::string flows_to_geojson(const roadnet::RoadNetwork& net,
                             const std::vector<FlowCluster>& flows,
                             const std::vector<FinalCluster>* final_clusters) {
  std::vector<int> final_of(flows.size(), -1);
  if (final_clusters != nullptr) {
    for (std::size_t c = 0; c < final_clusters->size(); ++c) {
      for (const std::size_t f : (*final_clusters)[c].flows) {
        final_of[f] = static_cast<int>(c);
      }
    }
  }
  std::ostringstream os;
  open_collection(os);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    std::vector<Point> pts;
    pts.reserve(flows[f].junctions.size());
    for (const NodeId j : flows[f].junctions) pts.push_back(net.node(j).pos);
    std::string props = str_cat("\"flow\":", f, ",\"cardinality\":", flows[f].cardinality(),
                                ",\"route_length_m\":", format_fixed(flows[f].route_length, 1));
    if (final_clusters != nullptr) props += str_cat(",\"final_cluster\":", final_of[f]);
    line_string(os, pts, props, f == 0);
  }
  close_collection(os);
  return os.str();
}

std::string trajectories_to_geojson(const traj::TrajectoryDataset& data) {
  std::ostringstream os;
  open_collection(os);
  bool first = true;
  for (const traj::Trajectory& tr : data) {
    std::vector<Point> pts;
    pts.reserve(tr.size());
    for (const traj::Location& loc : tr.points()) pts.push_back(loc.pos);
    line_string(os, pts, str_cat("\"trid\":", tr.id().value()), first);
    first = false;
  }
  close_collection(os);
  return os.str();
}

}  // namespace neat::eval
