// Human-readable summaries of clustering results — the text a NEAT server
// operator or CLI user reads after a run.
#pragma once

#include <iosfwd>
#include <string>

#include "core/clusterer.h"
#include "roadnet/road_network.h"

namespace neat::eval {

/// Options for report rendering.
struct ReportOptions {
  std::size_t top_flows{5};      ///< How many flows to detail.
  bool include_timings{true};
  bool include_phase3_work{true};
};

/// Writes a multi-line report of a NEAT result: per-phase summary, the top
/// flows by cardinality x length, coverage, and (optionally) timing and
/// Phase 3 work counters.
void write_report(std::ostream& out, const roadnet::RoadNetwork& net, const Result& result,
                  std::size_t dataset_trajectories, const ReportOptions& options = {});

/// Convenience: the report as a string.
[[nodiscard]] std::string report_string(const roadnet::RoadNetwork& net,
                                        const Result& result,
                                        std::size_t dataset_trajectories,
                                        const ReportOptions& options = {});

}  // namespace neat::eval
