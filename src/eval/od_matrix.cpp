#include "eval/od_matrix.h"

#include <algorithm>
#include <limits>

#include "common/error.h"

namespace neat::eval {

OdMatrix::OdMatrix(const std::vector<Zone>& zones, const traj::TrajectoryDataset& data)
    : zones_(zones) {
  NEAT_EXPECT(!zones_.empty(), "OdMatrix: at least one zone is required");
  counts_.assign(zones_.size(), std::vector<int>(zones_.size(), 0));
  trip_zones_.reserve(data.size());
  for (const traj::Trajectory& tr : data) {
    const std::size_t from = nearest_zone(tr.front().pos);
    const std::size_t to = nearest_zone(tr.back().pos);
    ++counts_[from][to];
    trip_zones_.emplace_back(from, to);
  }
}

const Zone& OdMatrix::zone(std::size_t i) const {
  NEAT_EXPECT(i < zones_.size(), "OdMatrix: zone index out of range");
  return zones_[i];
}

int OdMatrix::trips(std::size_t from, std::size_t to) const {
  NEAT_EXPECT(from < zones_.size() && to < zones_.size(),
              "OdMatrix: zone index out of range");
  return counts_[from][to];
}

int OdMatrix::total_trips() const {
  int total = 0;
  for (const auto& row : counts_) {
    for (const int c : row) total += c;
  }
  return total;
}

std::size_t OdMatrix::nearest_zone(Point p) const {
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < zones_.size(); ++i) {
    const double d = distance_sq(zones_[i].center, p);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

double OdMatrix::flow_share(std::size_t from, std::size_t to, const FlowCluster& flow,
                            const traj::TrajectoryDataset& data) const {
  NEAT_EXPECT(from < zones_.size() && to < zones_.size(),
              "OdMatrix: zone index out of range");
  NEAT_EXPECT(trip_zones_.size() == data.size(),
              "OdMatrix: dataset does not match the one the matrix was built from");
  const int demand = counts_[from][to];
  if (demand == 0) return 0.0;
  int carried = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (trip_zones_[i] != std::make_pair(from, to)) continue;
    if (std::binary_search(flow.participants.begin(), flow.participants.end(),
                           data[i].id())) {
      ++carried;
    }
  }
  return static_cast<double>(carried) / static_cast<double>(demand);
}

}  // namespace neat::eval
