#include "eval/flow_diff.h"

#include <algorithm>

#include "common/error.h"

namespace neat::eval {

double route_jaccard(const FlowCluster& a, const FlowCluster& b) {
  std::vector<SegmentId> sa = a.route;
  std::vector<SegmentId> sb = b.route;
  std::sort(sa.begin(), sa.end());
  sa.erase(std::unique(sa.begin(), sa.end()), sa.end());
  std::sort(sb.begin(), sb.end());
  sb.erase(std::unique(sb.begin(), sb.end()), sb.end());
  if (sa.empty() && sb.empty()) return 0.0;
  std::size_t common = 0;
  auto ia = sa.begin();
  auto ib = sb.begin();
  while (ia != sa.end() && ib != sb.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++common;
      ++ia;
      ++ib;
    }
  }
  const std::size_t unions = sa.size() + sb.size() - common;
  return static_cast<double>(common) / static_cast<double>(unions);
}

FlowDiff diff_flows(const std::vector<FlowCluster>& before,
                    const std::vector<FlowCluster>& after, double min_similarity) {
  NEAT_EXPECT(min_similarity > 0.0 && min_similarity <= 1.0,
              "diff_flows: min_similarity must be in (0, 1]");
  FlowDiff diff;

  struct Candidate {
    double jaccard;
    std::size_t b;
    std::size_t a;
  };
  std::vector<Candidate> candidates;
  for (std::size_t b = 0; b < before.size(); ++b) {
    for (std::size_t a = 0; a < after.size(); ++a) {
      const double j = route_jaccard(before[b], after[a]);
      if (j >= min_similarity) candidates.push_back({j, b, a});
    }
  }
  std::sort(candidates.begin(), candidates.end(), [](const Candidate& x, const Candidate& y) {
    if (x.jaccard != y.jaccard) return x.jaccard > y.jaccard;
    if (x.b != y.b) return x.b < y.b;
    return x.a < y.a;
  });

  std::vector<bool> before_used(before.size(), false);
  std::vector<bool> after_used(after.size(), false);
  for (const Candidate& c : candidates) {
    if (before_used[c.b] || after_used[c.a]) continue;
    before_used[c.b] = true;
    after_used[c.a] = true;
    diff.persisting.push_back(FlowMatch{
        c.b, c.a, c.jaccard, after[c.a].cardinality() - before[c.b].cardinality()});
  }
  for (std::size_t b = 0; b < before.size(); ++b) {
    if (!before_used[b]) diff.vanished.push_back(b);
  }
  for (std::size_t a = 0; a < after.size(); ++a) {
    if (!after_used[a]) diff.appeared.push_back(a);
  }
  return diff;
}

}  // namespace neat::eval
