#include "eval/metrics.h"

#include <algorithm>
#include <unordered_set>

#include "core/netflow.h"

namespace neat::eval {

RouteLengthStats flow_route_stats(const std::vector<FlowCluster>& flows) {
  RouteLengthStats st;
  st.count = flows.size();
  if (flows.empty()) return st;
  double sum = 0.0;
  for (const FlowCluster& f : flows) {
    sum += f.route_length;
    st.max_m = std::max(st.max_m, f.route_length);
  }
  st.avg_m = sum / static_cast<double>(flows.size());
  return st;
}

RouteLengthStats traclus_route_stats(const std::vector<traclus::Cluster>& cs) {
  RouteLengthStats st;
  st.count = cs.size();
  if (cs.empty()) return st;
  double sum = 0.0;
  for (const traclus::Cluster& c : cs) {
    sum += c.representative_length;
    st.max_m = std::max(st.max_m, c.representative_length);
  }
  st.avg_m = sum / static_cast<double>(cs.size());
  return st;
}

double fragment_coverage(const Result& result) {
  if (result.num_fragments == 0) return 0.0;
  std::size_t kept = 0;
  for (const FlowCluster& f : result.flow_clusters) {
    for (const std::size_t bi : f.members) {
      kept += static_cast<std::size_t>(result.base_clusters[bi].density());
    }
  }
  return static_cast<double>(kept) / static_cast<double>(result.num_fragments);
}

double trajectory_coverage(const Result& result, std::size_t num_trajectories) {
  if (num_trajectories == 0) return 0.0;
  std::vector<TrajectoryId> covered;
  for (const FlowCluster& f : result.flow_clusters) {
    covered = merge_participants(covered, f.participants);
  }
  return static_cast<double>(covered.size()) / static_cast<double>(num_trajectories);
}

}  // namespace neat::eval
