// Minimal SVG renderer for networks, trajectories and cluster polylines —
// the reproduction of the paper's visualization figures (Figure 3/4).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "roadnet/road_network.h"

namespace neat::eval {

/// Builds an SVG scene in network coordinates (y is flipped so north is up)
/// and writes it as a standalone .svg document.
class SvgWriter {
 public:
  /// `bounds` is the world-coordinate viewport; `width_px` the output width
  /// (height follows the aspect ratio). Throws neat::PreconditionError on a
  /// degenerate viewport.
  explicit SvgWriter(roadnet::Bounds bounds, double width_px = 1000.0);

  /// Adds a polyline; `width_px` is the stroke width in output pixels.
  void add_polyline(const std::vector<Point>& pts, const std::string& color,
                    double width_px = 1.0, double opacity = 1.0);

  /// Adds a filled circle of `radius_px` output pixels.
  void add_circle(Point center, double radius_px, const std::string& color);

  /// Adds every segment of a network as a thin line (the base map).
  void add_network(const roadnet::RoadNetwork& net, const std::string& color = "#d5d5d5",
                   double width_px = 0.6);

  /// Serializes the document.
  void write(std::ostream& out) const;

  /// Writes to a file; throws neat::Error when it cannot be opened.
  void write(const std::string& path) const;

  [[nodiscard]] std::size_t element_count() const { return elements_.size(); }

  /// A qualitative 10-color palette, cycled by index — for coloring
  /// clusters deterministically.
  [[nodiscard]] static std::string qualitative_color(std::size_t index);

 private:
  [[nodiscard]] Point to_svg(Point world) const;

  roadnet::Bounds bounds_;
  double width_px_;
  double height_px_;
  double scale_;
  std::vector<std::string> elements_;
};

}  // namespace neat::eval
