#include "eval/svg.h"

#include <array>
#include <fstream>
#include <ostream>

#include "common/error.h"
#include "common/string_util.h"

namespace neat::eval {

SvgWriter::SvgWriter(roadnet::Bounds bounds, double width_px)
    : bounds_(bounds), width_px_(width_px) {
  const double w = bounds_.max.x - bounds_.min.x;
  const double h = bounds_.max.y - bounds_.min.y;
  NEAT_EXPECT(w > 0.0 && h > 0.0, "SvgWriter: degenerate viewport");
  NEAT_EXPECT(width_px > 0.0, "SvgWriter: output width must be positive");
  scale_ = width_px_ / w;
  height_px_ = h * scale_;
}

Point SvgWriter::to_svg(Point world) const {
  return {(world.x - bounds_.min.x) * scale_,
          height_px_ - (world.y - bounds_.min.y) * scale_};  // flip y: north up
}

void SvgWriter::add_polyline(const std::vector<Point>& pts, const std::string& color,
                             double width_px, double opacity) {
  if (pts.size() < 2) return;
  std::string points;
  for (const Point p : pts) {
    const Point s = to_svg(p);
    points += format_fixed(s.x, 1) + "," + format_fixed(s.y, 1) + " ";
  }
  elements_.push_back(str_cat("<polyline points=\"", points, "\" fill=\"none\" stroke=\"",
                              color, "\" stroke-width=\"", format_fixed(width_px, 2),
                              "\" stroke-opacity=\"", format_fixed(opacity, 2),
                              "\" stroke-linecap=\"round\"/>"));
}

void SvgWriter::add_circle(Point center, double radius_px, const std::string& color) {
  const Point s = to_svg(center);
  elements_.push_back(str_cat("<circle cx=\"", format_fixed(s.x, 1), "\" cy=\"",
                              format_fixed(s.y, 1), "\" r=\"", format_fixed(radius_px, 1),
                              "\" fill=\"", color, "\"/>"));
}

void SvgWriter::add_network(const roadnet::RoadNetwork& net, const std::string& color,
                            double width_px) {
  for (const roadnet::Segment& s : net.segments()) {
    add_polyline({net.node(s.a).pos, net.node(s.b).pos}, color, width_px);
  }
}

void SvgWriter::write(std::ostream& out) const {
  out << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << format_fixed(width_px_, 0)
      << "\" height=\"" << format_fixed(height_px_, 0) << "\" viewBox=\"0 0 "
      << format_fixed(width_px_, 0) << ' ' << format_fixed(height_px_, 0) << "\">\n"
      << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  for (const std::string& element : elements_) out << element << '\n';
  out << "</svg>\n";
}

void SvgWriter::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error(str_cat("cannot open '", path, "' for writing"));
  write(out);
}

std::string SvgWriter::qualitative_color(std::size_t index) {
  static const std::array<const char*, 10> kPalette{
      "#d62728", "#1f77b4", "#2ca02c", "#ff7f0e", "#9467bd",
      "#8c564b", "#e377c2", "#17becf", "#bcbd22", "#7f7f7f"};
  return kPalette[index % kPalette.size()];
}

}  // namespace neat::eval
