// Aligned text tables + CSV dumps for the benchmark harness output.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace neat::eval {

/// Collects rows of string cells and prints them as an aligned text table
/// (and optionally as CSV). Used by every bench binary to render the
/// paper-shaped tables.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds one row; it may have fewer cells than the header (padded empty).
  /// Rows longer than the header widen the table.
  void add_row(std::vector<std::string> row);

  /// Prints the aligned table (header, rule, rows).
  void print(std::ostream& out) const;

  /// Writes the table as CSV to `path` (creating parent directories is the
  /// caller's concern). Throws neat::Error when the file cannot be opened.
  void write_csv(const std::string& path) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace neat::eval
