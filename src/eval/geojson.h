// GeoJSON export (RFC 7946 structure, planar coordinates) for networks and
// clustering results — the interchange format GIS tooling actually loads,
// complementing the SVG renderer.
#pragma once

#include <string>
#include <vector>

#include "core/flow_cluster.h"
#include "core/refiner.h"
#include "roadnet/road_network.h"
#include "traj/dataset.h"

namespace neat::eval {

/// The network as a FeatureCollection of LineString features with
/// properties sid, speed_mps, length_m, bidirectional.
[[nodiscard]] std::string network_to_geojson(const roadnet::RoadNetwork& net);

/// Flow clusters as LineString features with properties flow, cardinality,
/// route_length_m and (when `final_clusters` is non-null) final_cluster.
[[nodiscard]] std::string flows_to_geojson(
    const roadnet::RoadNetwork& net, const std::vector<FlowCluster>& flows,
    const std::vector<FinalCluster>* final_clusters = nullptr);

/// Trajectories as LineString features with property trid.
[[nodiscard]] std::string trajectories_to_geojson(const traj::TrajectoryDataset& data);

}  // namespace neat::eval
