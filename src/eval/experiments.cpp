#include "eval/experiments.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <ostream>

#include "common/error.h"
#include "common/string_util.h"

namespace neat::eval {

namespace {

double env_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  try {
    return parse_double(raw);
  } catch (const ParseError&) {
    throw Error(str_cat("environment variable ", name, " is not a number: '", raw, "'"));
  }
}

}  // namespace

ExperimentEnv& ExperimentEnv::instance() {
  static ExperimentEnv env;
  return env;
}

ExperimentEnv::ExperimentEnv() {
  object_scale_ = env_double("NEAT_BENCH_SCALE", 0.1);
  network_scale_ = env_double("NEAT_BENCH_NET_SCALE", 1.0);
  NEAT_EXPECT(object_scale_ > 0.0, "NEAT_BENCH_SCALE must be positive");
  NEAT_EXPECT(network_scale_ > 0.0 && network_scale_ <= 1.0,
              "NEAT_BENCH_NET_SCALE must be in (0, 1]");
}

std::size_t ExperimentEnv::scaled_objects(std::size_t paper_objects) const {
  const auto scaled =
      static_cast<std::size_t>(std::lround(static_cast<double>(paper_objects) * object_scale_));
  return std::max<std::size_t>(10, scaled);
}

ExperimentEnv::CityState& ExperimentEnv::city_state(const std::string& city) {
  CityState& state = cities_[city];
  if (!state.net) {
    state.net = std::make_unique<roadnet::RoadNetwork>(
        roadnet::make_named_city(city, network_scale_));
    state.index = std::make_unique<roadnet::SegmentGridIndex>(*state.net);
    // Hotspot/destination counts mirror the paper's Figure 3 structure for
    // ATL (two hotspots, three destinations); the larger maps get more.
    int hotspots = 2;
    int destinations = 3;
    // Sampling periods are tuned per city so the points-per-object ratio
    // matches the paper's Table II (ATL ~230, SJ ~260, MIA ~450).
    double sample_period_s = 2.85;
    double hotspot_radius_m = 900.0;
    if (city == "SJ") {
      hotspots = 3;
      destinations = 3;
      sample_period_s = 2.75;
      hotspot_radius_m = 800.0;
    } else if (city == "MIA") {
      hotspots = 4;
      destinations = 4;
      sample_period_s = 5.7;
      hotspot_radius_m = 2000.0;
    }
    state.sim_cfg = std::make_unique<sim::SimConfig>(
        sim::default_config(*state.net, hotspots, destinations));
    state.sim_cfg->sample_period_s = sample_period_s;
    state.sim_cfg->hotspot_radius_m = hotspot_radius_m;
  }
  return state;
}

const roadnet::RoadNetwork& ExperimentEnv::network(const std::string& city) {
  return *city_state(city).net;
}

const roadnet::SegmentGridIndex& ExperimentEnv::index(const std::string& city) {
  return *city_state(city).index;
}

const sim::SimConfig& ExperimentEnv::sim_config(const std::string& city) {
  return *city_state(city).sim_cfg;
}

const traj::TrajectoryDataset& ExperimentEnv::dataset(const std::string& city,
                                                      std::size_t paper_objects) {
  CityState& state = city_state(city);
  auto& slot = state.datasets[paper_objects];
  if (!slot) {
    const sim::MobilitySimulator simulator(*state.net, *state.sim_cfg);
    // Seed ties the dataset to (city, paper object count) so every bench
    // binary sees identical data.
    const std::uint64_t seed =
        std::hash<std::string>{}(city) * 1000003ULL + paper_objects;
    slot = std::make_unique<traj::TrajectoryDataset>(
        simulator.generate(scaled_objects(paper_objects), seed));
  }
  return *slot;
}

std::string results_dir() {
  const std::filesystem::path dir = "bench_results";
  std::filesystem::create_directories(dir);
  return dir.string();
}

void print_scale_banner(std::ostream& out, const std::string& bench_name) {
  const ExperimentEnv& env = ExperimentEnv::instance();
  out << "=== " << bench_name << " ===\n"
      << "object scale " << env.object_scale() << " (NEAT_BENCH_SCALE), network scale "
      << env.network_scale() << " (NEAT_BENCH_NET_SCALE); dataset names keep the paper's "
      << "object counts, e.g. ATL500 -> "
      << ExperimentEnv::instance().scaled_objects(500) << " simulated objects\n\n";
}

}  // namespace neat::eval
