#include "eval/report.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/string_util.h"
#include "eval/metrics.h"

namespace neat::eval {

void write_report(std::ostream& out, const roadnet::RoadNetwork& net, const Result& result,
                  std::size_t dataset_trajectories, const ReportOptions& options) {
  out << "NEAT clustering report\n"
      << "======================\n";
  out << "phase 1: " << result.num_fragments << " t-fragments in "
      << result.base_clusters.size() << " base clusters";
  if (result.num_gap_repairs > 0) out << " (" << result.num_gap_repairs << " gap repairs)";
  out << '\n';
  if (!result.base_clusters.empty()) {
    const BaseCluster& core = result.base_clusters.front();
    out << "  dense-core: segment " << core.sid().value() << " (density "
        << core.density() << ", " << core.cardinality() << " trajectories)\n";
  }

  if (!result.flow_clusters.empty() || !result.filtered_flows.empty()) {
    const RouteLengthStats stats = flow_route_stats(result.flow_clusters);
    out << "phase 2: " << result.flow_clusters.size() << " flow clusters kept (minCard "
        << format_fixed(result.effective_min_card, 2) << "), "
        << result.filtered_flows.size() << " filtered\n";
    out << "  routes: avg " << format_fixed(stats.avg_m / 1000.0, 2) << " km, max "
        << format_fixed(stats.max_m / 1000.0, 2) << " km\n";
    if (dataset_trajectories > 0) {
      out << "  coverage: "
          << format_fixed(100.0 * trajectory_coverage(result, dataset_trajectories), 1)
          << "% of trajectories, "
          << format_fixed(100.0 * fragment_coverage(result), 1) << "% of fragments\n";
    }

    // Top flows by service value (cardinality x length).
    std::vector<std::size_t> order(result.flow_clusters.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const FlowCluster& fa = result.flow_clusters[a];
      const FlowCluster& fb = result.flow_clusters[b];
      const double va = fa.cardinality() * fa.route_length;
      const double vb = fb.cardinality() * fb.route_length;
      if (va != vb) return va > vb;
      return a < b;
    });
    const std::size_t shown = std::min(options.top_flows, order.size());
    for (std::size_t r = 0; r < shown; ++r) {
      const FlowCluster& f = result.flow_clusters[order[r]];
      const Point a = net.node(f.start_junction()).pos;
      const Point b = net.node(f.end_junction()).pos;
      out << "  #" << r + 1 << ": " << f.route.size() << " segments, "
          << format_fixed(f.route_length / 1000.0, 2) << " km, " << f.cardinality()
          << " trajectories, (" << format_fixed(a.x, 0) << "," << format_fixed(a.y, 0)
          << ")->(" << format_fixed(b.x, 0) << "," << format_fixed(b.y, 0) << ")\n";
    }
  }

  if (!result.final_clusters.empty()) {
    out << "phase 3: " << result.final_clusters.size() << " final clusters\n";
    if (options.include_phase3_work) {
      out << "  work: " << result.pairs_evaluated << " pairs evaluated, "
          << result.sp_computations << " shortest paths, " << result.elb_pruned_pairs
          << " ELB-pruned pairs, " << result.lm_pruned_pairs
          << " landmark-pruned pairs\n";
    }
  }

  if (options.include_timings) {
    out << "timings: phase1 " << format_fixed(result.timing.phase1_s * 1000, 1)
        << " ms, phase2 " << format_fixed(result.timing.phase2_s * 1000, 1)
        << " ms, phase3 " << format_fixed(result.timing.phase3_s * 1000, 1)
        << " ms (total " << format_fixed(result.timing.total_s() * 1000, 1) << " ms)\n";
  }
}

std::string report_string(const roadnet::RoadNetwork& net, const Result& result,
                          std::size_t dataset_trajectories, const ReportOptions& options) {
  std::ostringstream os;
  write_report(os, net, result, dataset_trajectories, options);
  return os.str();
}

}  // namespace neat::eval
