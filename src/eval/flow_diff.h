// Flow evolution analysis — diffing two clustering snapshots.
//
// Traffic-monitoring deployments (paper §I) re-cluster periodically; the
// operational question is *what changed*: which major flows appeared, which
// vanished, which persisted (possibly with shifted extent). Flows are
// matched greedily by route similarity (Jaccard index over segment sets),
// best pairs first — deterministic and order-independent.
#pragma once

#include <cstddef>
#include <vector>

#include "core/flow_cluster.h"

namespace neat::eval {

/// A matched pair of flows across two snapshots.
struct FlowMatch {
  std::size_t before_index;
  std::size_t after_index;
  double route_jaccard;     ///< |A ∩ B| / |A ∪ B| over segment sets.
  int cardinality_change;   ///< after minus before.
};

/// Result of diffing two flow sets.
struct FlowDiff {
  std::vector<FlowMatch> persisting;     ///< Matched flows, best first.
  std::vector<std::size_t> vanished;     ///< Unmatched indices in `before`.
  std::vector<std::size_t> appeared;     ///< Unmatched indices in `after`.

  [[nodiscard]] std::size_t matched_count() const { return persisting.size(); }
};

/// Jaccard similarity of two representative routes (as segment sets).
/// Both empty: defined as 0.
[[nodiscard]] double route_jaccard(const FlowCluster& a, const FlowCluster& b);

/// Diffs two flow sets: greedy best-Jaccard matching above `min_similarity`
/// (pairs below it stay unmatched). Ties break on (before index, after
/// index), so the result is deterministic.
[[nodiscard]] FlowDiff diff_flows(const std::vector<FlowCluster>& before,
                                  const std::vector<FlowCluster>& after,
                                  double min_similarity = 0.3);

}  // namespace neat::eval
