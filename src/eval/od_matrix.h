// Origin-destination (OD) matrix estimation — the transportation-planning
// artifact the paper's §I motivates ("knowing which routes in a road
// network with highly dense and continuous traffic helps optimize rail/bus
// line and terminal arrangement").
//
// Zones are seeded by centre points (typically the simulator's hotspots and
// destinations); each trajectory contributes one trip from the zone nearest
// its origin to the zone nearest its destination. Per-OD-pair flow-cluster
// attribution reports which discovered flows carry each OD demand.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "core/flow_cluster.h"
#include "traj/dataset.h"

namespace neat::eval {

/// A demand zone seeded by a centre point.
struct Zone {
  std::string name;
  Point center;
};

/// Trip counts between zones plus per-pair flow attribution.
class OdMatrix {
 public:
  /// Builds the OD matrix: every trajectory's endpoints map to the nearest
  /// zone centres. Throws neat::PreconditionError when `zones` is empty.
  OdMatrix(const std::vector<Zone>& zones, const traj::TrajectoryDataset& data);

  [[nodiscard]] std::size_t zone_count() const { return zones_.size(); }
  [[nodiscard]] const Zone& zone(std::size_t i) const;

  /// Trips observed from zone `from` to zone `to`.
  [[nodiscard]] int trips(std::size_t from, std::size_t to) const;

  /// Total trips (== dataset size).
  [[nodiscard]] int total_trips() const;

  /// Index of the zone nearest to `p`.
  [[nodiscard]] std::size_t nearest_zone(Point p) const;

  /// Fraction of the from->to trips that participate in the given flow
  /// cluster — "how much of this OD demand does this corridor carry?".
  [[nodiscard]] double flow_share(std::size_t from, std::size_t to,
                                  const FlowCluster& flow,
                                  const traj::TrajectoryDataset& data) const;

 private:
  std::vector<Zone> zones_;
  std::vector<std::vector<int>> counts_;
  std::vector<std::pair<std::size_t, std::size_t>> trip_zones_;  // per trajectory
};

}  // namespace neat::eval
