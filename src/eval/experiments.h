// Shared experiment environment for the benchmark harness.
//
// Every bench binary regenerates one of the paper's tables/figures over the
// {ATL, SJ, MIA} × {500, 1000, 2000, 3000, 5000} grid. Networks and datasets
// are deterministic in (city, object count) and cached per process. Two
// environment variables rescale the workloads so the whole suite finishes on
// a laptop while keeping the paper's shapes:
//
//   NEAT_BENCH_SCALE      object-count multiplier, default 0.1
//                         (e.g. "ATL500" simulates 50 objects at the default)
//   NEAT_BENCH_NET_SCALE  road-network linear-size multiplier, default 1.0
#pragma once

#include <array>
#include <cstddef>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>

#include "roadnet/generators.h"
#include "roadnet/road_network.h"
#include "roadnet/spatial_index.h"
#include "sim/mobility_simulator.h"
#include "traj/dataset.h"

namespace neat::eval {

/// The object counts of the paper's Table II.
inline constexpr std::array<std::size_t, 5> kPaperObjectCounts{500, 1000, 2000, 3000, 5000};

/// The three road networks of the paper's Table I.
inline constexpr std::array<const char*, 3> kCities{"ATL", "SJ", "MIA"};

/// Process-wide cache of generated networks and datasets.
class ExperimentEnv {
 public:
  /// The singleton instance (bench binaries are single-threaded).
  static ExperimentEnv& instance();

  [[nodiscard]] double object_scale() const { return object_scale_; }
  [[nodiscard]] double network_scale() const { return network_scale_; }

  /// Paper object count -> scaled count (at least 10).
  [[nodiscard]] std::size_t scaled_objects(std::size_t paper_objects) const;

  /// The named road network ("ATL", "SJ", "MIA"), generated on first use.
  const roadnet::RoadNetwork& network(const std::string& city);

  /// Grid index over the named network.
  const roadnet::SegmentGridIndex& index(const std::string& city);

  /// Simulation config of the named network (hotspots/destinations).
  const sim::SimConfig& sim_config(const std::string& city);

  /// The dataset "<city><paper_objects>", e.g. ("ATL", 500) = ATL500,
  /// simulated at the scaled object count. Cached.
  const traj::TrajectoryDataset& dataset(const std::string& city,
                                         std::size_t paper_objects);

  ExperimentEnv(const ExperimentEnv&) = delete;
  ExperimentEnv& operator=(const ExperimentEnv&) = delete;

 private:
  ExperimentEnv();

  struct CityState {
    std::unique_ptr<roadnet::RoadNetwork> net;
    std::unique_ptr<roadnet::SegmentGridIndex> index;
    std::unique_ptr<sim::SimConfig> sim_cfg;
    std::map<std::size_t, std::unique_ptr<traj::TrajectoryDataset>> datasets;
  };

  CityState& city_state(const std::string& city);

  double object_scale_{0.1};
  double network_scale_{1.0};
  std::map<std::string, CityState> cities_;
};

/// Directory bench binaries write CSV series into (created on demand).
[[nodiscard]] std::string results_dir();

/// Prints the standard scale banner every bench binary emits first.
void print_scale_banner(std::ostream& out, const std::string& bench_name);

}  // namespace neat::eval
