// Read path of the serving subsystem.
//
// A QueryEngine answers client queries against whatever ClusterSnapshot is
// current in the SnapshotStore at the moment the query starts; the snapshot
// is pinned (shared_ptr) for the duration of the query, so a concurrent
// publication never tears a result. All query methods are const and
// thread-safe — run as many query threads as you like against one engine.
// Spatial lookups reuse the road network's SegmentGridIndex (built once per
// engine; its const queries are thread-safe), mapping a client position to
// candidate road segments and then through the snapshot's segment → flows
// index to flows.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "roadnet/spatial_index.h"
#include "serve/metrics.h"
#include "serve/snapshot.h"

namespace neat::serve {

/// Answer to a point → nearest-flow lookup.
struct NearestFlowHit {
  std::uint64_t trace_id{0};     ///< Correlation id echoed from the request.
  std::uint64_t snapshot_version{0};
  std::uint32_t flow{0};         ///< Index into the answering snapshot's flows().
  SegmentId segment;             ///< Route segment that was nearest to the query.
  double distance_m{0.0};        ///< Point-to-segment distance.
  int final_cluster{-1};         ///< Final cluster of the flow; -1 = none.
  int cardinality{0};            ///< Trajectory cardinality of the flow.
};

/// Answer to a segment → flows membership query.
struct SegmentFlows {
  std::uint64_t trace_id{0};         ///< Correlation id echoed from the request.
  std::uint64_t snapshot_version{0};
  std::vector<std::uint32_t> flows;  ///< Flow indices traversing the segment.
};

/// One entry of a top-k densest-flows answer.
struct RankedFlow {
  std::uint32_t flow{0};
  int cardinality{0};
  double route_length_m{0.0};
  int final_cluster{-1};
};

/// Answer to a top-k densest-flows query.
struct TopFlows {
  std::uint64_t trace_id{0};         ///< Correlation id echoed from the request.
  std::uint64_t snapshot_version{0};
  std::vector<RankedFlow> flows;  ///< Densest first; at most k entries.
};

/// Thread-safe query front end over a SnapshotStore.
class QueryEngine {
 public:
  /// Keeps references to `net` and `store` (and `metrics` when given); do
  /// not outlive them. Builds the engine's segment grid index eagerly.
  QueryEngine(const roadnet::RoadNetwork& net, const SnapshotStore& store,
              Metrics* metrics = nullptr);

  /// The flow passing closest to `p`, looking at route segments within
  /// `max_radius` metres. Ties (flows sharing the nearest segment) resolve
  /// to the highest-cardinality flow, then the lowest index. nullopt when no
  /// flow routes within the radius or no snapshot is published yet.
  ///
  /// Every query method takes an optional request-correlation `trace_id`
  /// (obs::next_trace_id() is minted when 0): the id is attached to the
  /// query's span as an arg and echoed in the answer, so one trace search
  /// follows one request end-to-end across ingest and query spans.
  [[nodiscard]] std::optional<NearestFlowHit> nearest_flow(
      Point p, double max_radius, std::uint64_t trace_id = 0) const;

  /// All flows whose representative route traverses `sid` (ascending index
  /// order). Empty list when none or no snapshot yet.
  [[nodiscard]] SegmentFlows flows_on_segment(SegmentId sid,
                                              std::uint64_t trace_id = 0) const;

  /// The `k` densest flows (trajectory cardinality desc). Fewer when the
  /// snapshot holds fewer flows; empty when no snapshot yet.
  [[nodiscard]] TopFlows top_k_flows(std::size_t k, std::uint64_t trace_id = 0) const;

  /// Pins and returns the current snapshot (nullptr before first publish).
  /// For callers needing multiple consistent reads from one version.
  [[nodiscard]] std::shared_ptr<const ClusterSnapshot> snapshot() const {
    return store_.current();
  }

  [[nodiscard]] const roadnet::SegmentGridIndex& grid() const { return grid_; }

 private:
  const roadnet::RoadNetwork& net_;
  const SnapshotStore& store_;
  Metrics* metrics_;
  roadnet::SegmentGridIndex grid_;
};

}  // namespace neat::serve
