#include "serve/query_engine.h"

#include <limits>

#include "common/stopwatch.h"
#include "obs/trace.h"

namespace neat::serve {

QueryEngine::QueryEngine(const roadnet::RoadNetwork& net, const SnapshotStore& store,
                         Metrics* metrics)
    : net_(net), store_(store), metrics_(metrics), grid_(net) {}

std::optional<NearestFlowHit> QueryEngine::nearest_flow(Point p, double max_radius,
                                                        std::uint64_t trace_id) const {
  if (trace_id == 0) trace_id = obs::next_trace_id();
  obs::ScopedSpan span("serve.query.nearest_flow");
  span.arg("trace_id", trace_id);
  const Stopwatch watch;
  const auto snap = store_.current();
  if (!snap) {
    if (metrics_ != nullptr) {
      metrics_->record_empty_snapshot_query();
      metrics_->record_query(Metrics::QueryKind::kNearestFlow, watch.elapsed_seconds());
    }
    return std::nullopt;
  }

  // Candidate route segments near the client, nearest-carrying-flow wins.
  std::optional<NearestFlowHit> best;
  for (const SegmentId sid : grid_.segments_within(p, max_radius)) {
    const auto flows = snap->flows_on_segment(sid);
    if (flows.empty()) continue;
    double dist = std::numeric_limits<double>::infinity();
    (void)net_.project_to_segment(sid, p, &dist);
    if (best && best->distance_m <= dist) continue;
    // Among flows sharing this segment: highest cardinality, then lowest
    // index (flows_on_segment lists ascending, so > keeps the first max).
    std::uint32_t pick = flows.front();
    for (const std::uint32_t f : flows) {
      if (snap->flows()[f].cardinality() > snap->flows()[pick].cardinality()) pick = f;
    }
    best = NearestFlowHit{trace_id,
                          snap->version(),
                          pick,
                          sid,
                          dist,
                          snap->final_cluster_of(pick),
                          snap->flows()[pick].cardinality()};
  }
  if (metrics_ != nullptr) {
    metrics_->record_query(Metrics::QueryKind::kNearestFlow, watch.elapsed_seconds());
  }
  return best;
}

SegmentFlows QueryEngine::flows_on_segment(SegmentId sid,
                                           std::uint64_t trace_id) const {
  if (trace_id == 0) trace_id = obs::next_trace_id();
  obs::ScopedSpan span("serve.query.flows_on_segment");
  span.arg("trace_id", trace_id);
  const Stopwatch watch;
  SegmentFlows out;
  out.trace_id = trace_id;
  if (const auto snap = store_.current()) {
    out.snapshot_version = snap->version();
    const auto flows = snap->flows_on_segment(sid);
    out.flows.assign(flows.begin(), flows.end());
  } else if (metrics_ != nullptr) {
    metrics_->record_empty_snapshot_query();
  }
  if (metrics_ != nullptr) {
    metrics_->record_query(Metrics::QueryKind::kSegmentFlows, watch.elapsed_seconds());
  }
  return out;
}

TopFlows QueryEngine::top_k_flows(std::size_t k, std::uint64_t trace_id) const {
  if (trace_id == 0) trace_id = obs::next_trace_id();
  obs::ScopedSpan span("serve.query.top_k_flows");
  span.arg("trace_id", trace_id);
  const Stopwatch watch;
  TopFlows out;
  out.trace_id = trace_id;
  if (const auto snap = store_.current()) {
    out.snapshot_version = snap->version();
    const auto ranked = snap->flows_by_density();
    out.flows.reserve(std::min(k, ranked.size()));
    for (std::size_t i = 0; i < ranked.size() && i < k; ++i) {
      const std::uint32_t f = ranked[i];
      const FlowCluster& flow = snap->flows()[f];
      out.flows.push_back(RankedFlow{f, flow.cardinality(), flow.route_length,
                                     snap->final_cluster_of(f)});
    }
  } else if (metrics_ != nullptr) {
    metrics_->record_empty_snapshot_query();
  }
  if (metrics_ != nullptr) {
    metrics_->record_query(Metrics::QueryKind::kTopK, watch.elapsed_seconds());
  }
  return out;
}

}  // namespace neat::serve
