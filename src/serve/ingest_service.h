// Write path of the serving subsystem.
//
// An IngestService owns the clustering state (an IncrementalClusterer) and a
// single background worker that drains trajectory batches from a bounded
// MPSC queue, re-clusters, and publishes a fresh immutable ClusterSnapshot
// into the SnapshotStore — queries running concurrently keep reading the
// previous snapshot until the atomic swap and are never blocked. Producers
// pick a backpressure policy: block until the worker catches up, or shed
// load (submit() returns false). A batch with invalid input (e.g. duplicate
// trajectory ids) is counted as failed and skipped; the service keeps
// serving the last good snapshot.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "core/incremental.h"
#include "serve/bounded_queue.h"
#include "serve/metrics.h"
#include "serve/snapshot.h"
#include "traj/dataset.h"

namespace neat::serve {

/// Tuning of the ingest path.
struct IngestOptions {
  /// How submit() behaves when the batch queue is full.
  enum class Backpressure {
    kBlock,   ///< Wait for the worker to free a slot.
    kReject,  ///< Return false immediately (load shedding).
  };

  std::size_t queue_capacity{8};
  Backpressure backpressure{Backpressure::kBlock};
  /// Options of the underlying IncrementalClusterer (sliding window, ...).
  IncrementalOptions incremental;
};

/// Background batch-ingest worker publishing snapshots to a SnapshotStore.
class IngestService {
 public:
  /// Keeps references to `net`, `store` and `metrics`; do not outlive them.
  /// The worker thread starts immediately. Throws neat::PreconditionError on
  /// invalid `config` or options.
  IngestService(const roadnet::RoadNetwork& net, Config config, SnapshotStore& store,
                Metrics& metrics, IngestOptions options = {});

  /// Stops the service (drains already-accepted batches first).
  ~IngestService();

  IngestService(const IngestService&) = delete;
  IngestService& operator=(const IngestService&) = delete;

  /// Hands one batch to the worker. Returns true when accepted; false when
  /// rejected by backpressure or the service is stopped. Trajectory ids must
  /// be unique across all accepted batches (violations surface as a failed
  /// batch in the metrics, not an exception here — submission is async).
  ///
  /// `trace_id` correlates the batch's ingest span with the client request
  /// that produced it (0 mints a fresh obs::next_trace_id()); the id used is
  /// written to `*trace_id_out` when non-null, even on rejection, so callers
  /// can log/echo it.
  bool submit(traj::TrajectoryDataset batch, std::uint64_t trace_id = 0,
              std::uint64_t* trace_id_out = nullptr);

  /// Blocks until every batch accepted so far has been processed (published
  /// or counted failed).
  void flush();

  /// Graceful shutdown: stops accepting, drains the queue, publishes the
  /// remaining batches, joins the worker. Idempotent.
  void stop();

  /// Batches published as snapshots so far.
  [[nodiscard]] std::uint64_t batches_published() const {
    return published_.load(std::memory_order_relaxed);
  }

  /// Batches accepted into the queue so far.
  [[nodiscard]] std::uint64_t batches_accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }

  /// Batches currently waiting in the queue (accepted, not yet picked up by
  /// the worker). Exported on /statusz as the ingest backlog.
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }

 private:
  /// A batch tagged with the request-correlation id it travels under.
  struct PendingBatch {
    std::uint64_t trace_id{0};
    traj::TrajectoryDataset batch;
  };

  void run();
  void process_batch(PendingBatch pending);

  const roadnet::RoadNetwork& net_;
  SnapshotStore& store_;
  Metrics& metrics_;
  IngestOptions options_;
  IncrementalClusterer clusterer_;  ///< Touched only by the worker thread.
  BoundedQueue<PendingBatch> queue_;
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> processed_{0};
  std::atomic<std::uint64_t> published_{0};
  std::atomic<bool> stopped_{false};
  std::mutex flush_mu_;
  std::condition_variable flush_cv_;
  std::thread worker_;  ///< Last member: starts in the ctor body, after state.
};

}  // namespace neat::serve
