#include "serve/snapshot.h"

#include <algorithm>

#include "common/error.h"
#include "common/string_util.h"

namespace neat::serve {

std::shared_ptr<const ClusterSnapshot> ClusterSnapshot::build(
    const roadnet::RoadNetwork& net, std::vector<FlowCluster> flows,
    std::vector<FinalCluster> final_clusters, std::uint64_t version) {
  NEAT_EXPECT(version >= 1, "snapshot versions start at 1");
  const std::size_t seg_count = net.segment_count();
  auto snap = std::shared_ptr<ClusterSnapshot>(new ClusterSnapshot());
  snap->version_ = version;

  // Flow -> final cluster inverse, validating member indices.
  snap->final_of_.assign(flows.size(), -1);
  for (std::size_t c = 0; c < final_clusters.size(); ++c) {
    for (const std::size_t f : final_clusters[c].flows) {
      NEAT_EXPECT(f < flows.size(),
                  str_cat("final cluster ", c, " references flow ", f, " of ",
                          flows.size()));
      snap->final_of_[f] = static_cast<int>(c);
    }
  }

  // CSR segment -> flows index via counting sort (two passes over routes).
  std::vector<std::uint32_t> counts(seg_count + 1, 0);
  for (const FlowCluster& flow : flows) {
    for (const SegmentId sid : flow.route) {
      NEAT_EXPECT(sid.valid() && static_cast<std::size_t>(sid.value()) < seg_count,
                  str_cat("flow route references unknown segment ", sid.value()));
      ++counts[static_cast<std::size_t>(sid.value()) + 1];
    }
  }
  for (std::size_t s = 0; s < seg_count; ++s) counts[s + 1] += counts[s];
  snap->seg_offsets_ = counts;  // counts now holds the final offsets.
  snap->seg_flow_ids_.resize(counts.back());
  // Filling in ascending flow order keeps every per-segment list ascending.
  std::vector<std::uint32_t> cursor(counts.begin(), counts.end() - 1);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    for (const SegmentId sid : flows[f].route) {
      snap->seg_flow_ids_[cursor[static_cast<std::size_t>(sid.value())]++] =
          static_cast<std::uint32_t>(f);
    }
  }

  // Density ranking: cardinality desc, route_length desc, index asc.
  snap->by_density_.resize(flows.size());
  for (std::size_t f = 0; f < flows.size(); ++f) {
    snap->by_density_[f] = static_cast<std::uint32_t>(f);
  }
  std::sort(snap->by_density_.begin(), snap->by_density_.end(),
            [&flows](std::uint32_t a, std::uint32_t b) {
              const FlowCluster& fa = flows[a];
              const FlowCluster& fb = flows[b];
              if (fa.cardinality() != fb.cardinality())
                return fa.cardinality() > fb.cardinality();
              if (fa.route_length != fb.route_length)
                return fa.route_length > fb.route_length;
              return a < b;
            });

  for (const FlowCluster& flow : flows) {
    snap->total_participants_ += flow.participants.size();
  }
  snap->flows_ = std::move(flows);
  snap->final_clusters_ = std::move(final_clusters);
  return snap;
}

std::span<const std::uint32_t> ClusterSnapshot::flows_on_segment(SegmentId sid) const {
  if (!sid.valid() || static_cast<std::size_t>(sid.value()) >= segment_count()) {
    return {};
  }
  const std::size_t s = static_cast<std::size_t>(sid.value());
  return std::span<const std::uint32_t>(seg_flow_ids_)
      .subspan(seg_offsets_[s], seg_offsets_[s + 1] - seg_offsets_[s]);
}

int ClusterSnapshot::final_cluster_of(std::uint32_t flow_idx) const {
  if (flow_idx >= final_of_.size()) return -1;
  return final_of_[flow_idx];
}

bool ClusterSnapshot::validate(const roadnet::RoadNetwork& net) const {
  if (version_ == 0) return false;
  if (seg_offsets_.size() != net.segment_count() + 1) return false;
  if (final_of_.size() != flows_.size()) return false;
  if (by_density_.size() != flows_.size()) return false;
  if (seg_offsets_.front() != 0 || seg_offsets_.back() != seg_flow_ids_.size()) {
    return false;
  }
  // CSR: offsets monotonic; every listed flow exists, is listed ascending,
  // and really routes over the segment.
  for (std::size_t s = 0; s < net.segment_count(); ++s) {
    if (seg_offsets_[s] > seg_offsets_[s + 1]) return false;
    std::uint32_t prev = 0;
    bool first = true;
    for (std::uint32_t i = seg_offsets_[s]; i < seg_offsets_[s + 1]; ++i) {
      const std::uint32_t f = seg_flow_ids_[i];
      if (f >= flows_.size()) return false;
      if (!first && f < prev) return false;
      first = false;
      prev = f;
      const auto& route = flows_[f].route;
      const auto sid = SegmentId(static_cast<std::int32_t>(s));
      if (std::find(route.begin(), route.end(), sid) == route.end()) return false;
    }
  }
  // Every route segment of every flow is indexed.
  for (std::size_t f = 0; f < flows_.size(); ++f) {
    if (flows_[f].junctions.size() != flows_[f].route.size() + 1) return false;
    for (const SegmentId sid : flows_[f].route) {
      const auto listed = flows_on_segment(sid);
      if (std::find(listed.begin(), listed.end(), static_cast<std::uint32_t>(f)) ==
          listed.end()) {
        return false;
      }
    }
  }
  // final_of_ agrees with final_clusters_ both ways.
  for (std::size_t c = 0; c < final_clusters_.size(); ++c) {
    for (const std::size_t f : final_clusters_[c].flows) {
      if (f >= flows_.size()) return false;
      if (final_of_[f] != static_cast<int>(c)) return false;
    }
  }
  for (std::size_t f = 0; f < final_of_.size(); ++f) {
    const int c = final_of_[f];
    if (c < 0) continue;
    if (static_cast<std::size_t>(c) >= final_clusters_.size()) return false;
    const auto& members = final_clusters_[static_cast<std::size_t>(c)].flows;
    if (std::find(members.begin(), members.end(), f) == members.end()) return false;
  }
  // Density ranking is a permutation in the documented order.
  std::vector<bool> seen(flows_.size(), false);
  for (std::size_t i = 0; i < by_density_.size(); ++i) {
    const std::uint32_t f = by_density_[i];
    if (f >= flows_.size() || seen[f]) return false;
    seen[f] = true;
    if (i > 0 &&
        flows_[by_density_[i - 1]].cardinality() < flows_[f].cardinality()) {
      return false;
    }
  }
  return true;
}

void SnapshotStore::publish(std::shared_ptr<const ClusterSnapshot> snapshot) {
  NEAT_EXPECT(snapshot != nullptr, "cannot publish a null snapshot");
  // Publications come from one writer in the intended topology, but stay
  // safe under racing writers: the version check and the swap are one
  // critical section, so the version stays strictly increasing.
  const std::lock_guard<std::mutex> lock(mu_);
  NEAT_EXPECT(snapshot_ == nullptr || snapshot->version() > snapshot_->version(),
              str_cat("snapshot version ", snapshot->version(),
                      " does not advance current version ", snapshot_->version()));
  snapshot_ = std::move(snapshot);
}

std::uint64_t SnapshotStore::version() const {
  const auto snap = current();
  return snap ? snap->version() : 0;
}

}  // namespace neat::serve
