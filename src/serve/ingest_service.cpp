#include "serve/ingest_service.h"

#include <utility>

#include "common/stopwatch.h"
#include "obs/log/log.h"
#include "obs/trace.h"

namespace neat::serve {

IngestService::IngestService(const roadnet::RoadNetwork& net, Config config,
                             SnapshotStore& store, Metrics& metrics,
                             IngestOptions options)
    : net_(net),
      store_(store),
      metrics_(metrics),
      options_(options),
      clusterer_(net, config, options.incremental),
      queue_(options.queue_capacity) {
  worker_ = std::thread([this] { run(); });
}

IngestService::~IngestService() { stop(); }

bool IngestService::submit(traj::TrajectoryDataset batch, std::uint64_t trace_id,
                           std::uint64_t* trace_id_out) {
  if (trace_id == 0) trace_id = obs::next_trace_id();
  if (trace_id_out != nullptr) *trace_id_out = trace_id;
  if (stopped_.load(std::memory_order_acquire)) return false;
  const bool block = options_.backpressure == IngestOptions::Backpressure::kBlock;
  // Count the acceptance before the push lands so flush() can never observe
  // processed_ caught up while this batch is still invisible to it.
  accepted_.fetch_add(1, std::memory_order_acq_rel);
  const PushResult r = queue_.push(PendingBatch{trace_id, std::move(batch)}, block);
  if (r == PushResult::kAccepted) return true;
  accepted_.fetch_sub(1, std::memory_order_acq_rel);
  {
    const std::lock_guard<std::mutex> lock(flush_mu_);  // pairs with flush()'s wait
  }
  flush_cv_.notify_all();
  if (r == PushResult::kRejected) {
    metrics_.record_rejected_batch();
    NEAT_LOG(kWarn, "serve")
        .msg("ingest batch rejected: queue full")
        .kv("trace_id_req", trace_id)
        .kv("queue_capacity", options_.queue_capacity);
  }
  return false;
}

void IngestService::flush() {
  std::unique_lock<std::mutex> lock(flush_mu_);
  flush_cv_.wait(lock, [this] {
    return processed_.load(std::memory_order_acquire) >=
           accepted_.load(std::memory_order_acquire);
  });
}

void IngestService::stop() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) {
    if (worker_.joinable()) worker_.join();
    return;
  }
  queue_.close();
  if (worker_.joinable()) worker_.join();
  flush_cv_.notify_all();
}

void IngestService::run() {
  obs::Tracer::global().set_thread_name("serve-ingest");
  while (auto pending = queue_.pop()) {
    process_batch(std::move(*pending));
  }
}

void IngestService::process_batch(PendingBatch pending) {
  obs::ScopedSpan span("serve.ingest_batch");
  span.arg("trace_id", pending.trace_id);
  // Ambient for the whole batch: pipeline log lines join the batch's trace.
  const obs::TraceIdScope trace_scope(pending.trace_id);
  const Stopwatch watch;
  const std::size_t n_trajectories = pending.batch.size();
  span.arg("trajectories", static_cast<std::uint64_t>(n_trajectories));
  try {
    clusterer_.add_batch(pending.batch);
    auto [flows, clusters] = clusterer_.snapshot_state();
    const std::uint64_t version = published_.load(std::memory_order_relaxed) + 1;
    store_.publish(
        ClusterSnapshot::build(net_, std::move(flows), std::move(clusters), version));
    published_.store(version, std::memory_order_release);
    metrics_.record_ingest(n_trajectories, watch.elapsed_seconds(), version);
    span.arg("version", version);
    NEAT_LOG(kInfo, "serve")
        .msg("snapshot published")
        .kv("version", version)
        .kv("trajectories", n_trajectories)
        .kv("duration_ms", watch.elapsed_seconds() * 1e3);
  } catch (const Error& e) {
    // Bad batch (duplicate ids, unknown segments, ...): drop it, keep
    // serving the previous snapshot.
    metrics_.record_failed_batch();
    NEAT_LOG(kWarn, "serve")
        .msg("ingest batch failed; previous snapshot kept")
        .kv("trajectories", n_trajectories)
        .kv("reason", e.what());
  }
  processed_.fetch_add(1, std::memory_order_acq_rel);
  {
    // Pairs with flush(): the empty critical section orders the counter
    // update before the notify so a flusher mid-predicate-check cannot
    // miss the wakeup.
    const std::lock_guard<std::mutex> lock(flush_mu_);
  }
  flush_cv_.notify_all();
}

}  // namespace neat::serve
