#include "serve/metrics.h"

#include <chrono>
#include <sstream>

namespace neat::serve {

namespace {

std::int64_t steady_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

obs::Registry* pick(obs::Registry* external, std::unique_ptr<obs::Registry>& owned) {
  if (external != nullptr) return external;
  owned = std::make_unique<obs::Registry>();
  return owned.get();
}

}  // namespace

Metrics::Metrics(obs::Registry* registry)
    : reg_(pick(registry, owned_)),
      query_latency_(reg_->histogram("neat_serve_query_duration_seconds")),
      ingest_latency_(reg_->histogram("neat_serve_ingest_duration_seconds")),
      nearest_flow_queries_(
          reg_->counter("neat_serve_queries_total", {{"kind", "nearest_flow"}})),
      segment_queries_(
          reg_->counter("neat_serve_queries_total", {{"kind", "segment_flows"}})),
      top_k_queries_(reg_->counter("neat_serve_queries_total", {{"kind", "top_k"}})),
      empty_snapshot_queries_(reg_->counter("neat_serve_empty_snapshot_queries_total")),
      batches_ingested_(reg_->counter("neat_serve_ingest_batches_total", {{"result", "ok"}})),
      batches_rejected_(
          reg_->counter("neat_serve_ingest_batches_total", {{"result", "rejected"}})),
      batches_failed_(
          reg_->counter("neat_serve_ingest_batches_total", {{"result", "failed"}})),
      trajectories_ingested_(reg_->counter("neat_serve_ingested_trajectories_total")),
      snapshot_version_(reg_->gauge("neat_serve_snapshot_version")),
      last_publish_gauge_(reg_->gauge("neat_serve_last_publish_timestamp_seconds")) {
  reg_->set_help("neat_serve_query_duration_seconds",
                 "Latency of flow-cluster queries (all kinds).");
  reg_->set_help("neat_serve_ingest_duration_seconds",
                 "Latency of ingest batches: clustering plus snapshot publish.");
  reg_->set_help("neat_serve_queries_total", "Queries answered, by query kind.");
  reg_->set_help("neat_serve_empty_snapshot_queries_total",
                 "Queries answered before any snapshot was published.");
  reg_->set_help("neat_serve_ingest_batches_total",
                 "Ingest batches, by outcome (ok/rejected/failed).");
  reg_->set_help("neat_serve_ingested_trajectories_total",
                 "Trajectories accepted into published snapshots.");
  reg_->set_help("neat_serve_snapshot_version",
                 "Version of the currently served cluster snapshot (0 = none yet).");
  reg_->set_help("neat_serve_last_publish_timestamp_seconds",
                 "Steady-clock time of the latest snapshot publish, in seconds.");
}

void Metrics::record_query(QueryKind kind, double seconds) {
  switch (kind) {
    case QueryKind::kNearestFlow: nearest_flow_queries_.add(); break;
    case QueryKind::kSegmentFlows: segment_queries_.add(); break;
    case QueryKind::kTopK: top_k_queries_.add(); break;
  }
  query_latency_.record(seconds);
}

void Metrics::record_empty_snapshot_query() { empty_snapshot_queries_.add(); }

void Metrics::record_ingest(std::size_t trajectories, double seconds,
                            std::uint64_t version) {
  batches_ingested_.add();
  trajectories_ingested_.add(trajectories);
  ingest_latency_.record(seconds);
  snapshot_version_.set(static_cast<double>(version));
  const std::int64_t now = steady_now_us();
  last_publish_us_.store(now, std::memory_order_relaxed);
  last_publish_gauge_.set(static_cast<double>(now) / 1e6);
}

void Metrics::record_rejected_batch() { batches_rejected_.add(); }

void Metrics::record_failed_batch() { batches_failed_.add(); }

double Metrics::snapshot_age_seconds() const {
  const std::int64_t at = last_publish_us_.load(std::memory_order_relaxed);
  if (at < 0) return -1.0;  // sentinel: nothing published yet
  return static_cast<double>(steady_now_us() - at) / 1e6;
}

std::uint64_t Metrics::snapshot_version() const {
  return static_cast<std::uint64_t>(snapshot_version_.value());
}

MetricsSnapshot Metrics::snapshot() const {
  MetricsSnapshot s;
  s.nearest_flow_queries = nearest_flow_queries_.value();
  s.segment_queries = segment_queries_.value();
  s.top_k_queries = top_k_queries_.value();
  s.queries_total = s.nearest_flow_queries + s.segment_queries + s.top_k_queries;
  s.empty_snapshot_queries = empty_snapshot_queries_.value();
  s.query_p50_s = query_latency_.quantile_seconds(0.50);
  s.query_p99_s = query_latency_.quantile_seconds(0.99);
  s.query_mean_s = query_latency_.mean_seconds();
  s.batches_ingested = batches_ingested_.value();
  s.batches_rejected = batches_rejected_.value();
  s.batches_failed = batches_failed_.value();
  s.trajectories_ingested = trajectories_ingested_.value();
  s.ingest_p50_s = ingest_latency_.quantile_seconds(0.50);
  s.ingest_mean_s = ingest_latency_.mean_seconds();
  s.snapshot_version = snapshot_version();
  s.snapshot_age_s = snapshot_age_seconds();
  return s;
}

namespace {

void append_histogram_json(std::ostringstream& out, const LatencyHistogram& h) {
  out << "{\"count\":" << h.count() << ",\"buckets_us\":[";
  // Trailing empty buckets are elided; emitted entries are cumulative-free
  // raw counts, bucket i spanning up to 2^i µs.
  std::size_t last = 0;
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    if (h.bucket_count(i) > 0) last = i;
  }
  for (std::size_t i = 0; i <= last; ++i) {
    if (i > 0) out << ',';
    out << h.bucket_count(i);
  }
  out << "]}";
}

}  // namespace

std::string Metrics::to_json() const {
  const MetricsSnapshot s = snapshot();
  std::ostringstream out;
  out.precision(9);
  out << "{\"queries\":{\"total\":" << s.queries_total
      << ",\"nearest_flow\":" << s.nearest_flow_queries
      << ",\"segment_flows\":" << s.segment_queries
      << ",\"top_k\":" << s.top_k_queries
      << ",\"empty_snapshot\":" << s.empty_snapshot_queries
      << ",\"latency_s\":{\"p50\":" << s.query_p50_s << ",\"p99\":" << s.query_p99_s
      << ",\"mean\":" << s.query_mean_s << "},\"histogram\":";
  append_histogram_json(out, query_latency_);
  out << "},\"ingest\":{\"batches\":" << s.batches_ingested
      << ",\"rejected\":" << s.batches_rejected << ",\"failed\":" << s.batches_failed
      << ",\"trajectories\":" << s.trajectories_ingested
      << ",\"latency_s\":{\"p50\":" << s.ingest_p50_s << ",\"mean\":" << s.ingest_mean_s
      << "},\"histogram\":";
  append_histogram_json(out, ingest_latency_);
  out << "},\"snapshot\":{\"version\":" << s.snapshot_version
      << ",\"age_s\":" << s.snapshot_age_s << "}}";
  return out.str();
}

}  // namespace neat::serve
