#include "serve/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

namespace neat::serve {

namespace {

std::int64_t steady_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Index of the log2 bucket for a microsecond value: 0 for < 1 µs, else
// floor(log2(us)) + 1, clamped to the last bucket.
std::size_t bucket_of(double us) {
  if (us < 1.0) return 0;
  const auto exp = static_cast<std::size_t>(std::floor(std::log2(us))) + 1;
  return std::min(exp, LatencyHistogram::kBuckets - 1);
}

}  // namespace

void LatencyHistogram::record(double seconds) {
  const double us = std::max(0.0, seconds * 1e6);
  buckets_[bucket_of(us)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(static_cast<std::uint64_t>(us), std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::count() const {
  return count_.load(std::memory_order_relaxed);
}

double LatencyHistogram::mean_seconds() const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  return static_cast<double>(sum_us_.load(std::memory_order_relaxed)) / 1e6 /
         static_cast<double>(n);
}

double LatencyHistogram::quantile_seconds(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation, 1-based; ceil so q=0.5 of 2 picks the 1st.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return bucket_upper_seconds(i);
  }
  return bucket_upper_seconds(kBuckets - 1);
}

std::uint64_t LatencyHistogram::bucket_count(std::size_t i) const {
  return buckets_[i].load(std::memory_order_relaxed);
}

double LatencyHistogram::bucket_upper_seconds(std::size_t i) {
  return std::ldexp(1.0, static_cast<int>(i)) / 1e6;  // 2^i µs.
}

void Metrics::record_query(QueryKind kind, double seconds) {
  switch (kind) {
    case QueryKind::kNearestFlow:
      nearest_flow_queries_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryKind::kSegmentFlows:
      segment_queries_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryKind::kTopK:
      top_k_queries_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  query_latency_.record(seconds);
}

void Metrics::record_empty_snapshot_query() {
  empty_snapshot_queries_.fetch_add(1, std::memory_order_relaxed);
}

void Metrics::record_ingest(std::size_t trajectories, double seconds,
                            std::uint64_t version) {
  batches_ingested_.fetch_add(1, std::memory_order_relaxed);
  trajectories_ingested_.fetch_add(trajectories, std::memory_order_relaxed);
  ingest_latency_.record(seconds);
  snapshot_version_.store(version, std::memory_order_relaxed);
  last_publish_us_.store(steady_now_us(), std::memory_order_relaxed);
}

void Metrics::record_rejected_batch() {
  batches_rejected_.fetch_add(1, std::memory_order_relaxed);
}

void Metrics::record_failed_batch() {
  batches_failed_.fetch_add(1, std::memory_order_relaxed);
}

double Metrics::snapshot_age_seconds() const {
  const std::int64_t at = last_publish_us_.load(std::memory_order_relaxed);
  if (at == 0) return 0.0;
  return static_cast<double>(steady_now_us() - at) / 1e6;
}

std::uint64_t Metrics::snapshot_version() const {
  return snapshot_version_.load(std::memory_order_relaxed);
}

MetricsSnapshot Metrics::snapshot() const {
  MetricsSnapshot s;
  s.nearest_flow_queries = nearest_flow_queries_.load(std::memory_order_relaxed);
  s.segment_queries = segment_queries_.load(std::memory_order_relaxed);
  s.top_k_queries = top_k_queries_.load(std::memory_order_relaxed);
  s.queries_total = s.nearest_flow_queries + s.segment_queries + s.top_k_queries;
  s.empty_snapshot_queries = empty_snapshot_queries_.load(std::memory_order_relaxed);
  s.query_p50_s = query_latency_.quantile_seconds(0.50);
  s.query_p99_s = query_latency_.quantile_seconds(0.99);
  s.query_mean_s = query_latency_.mean_seconds();
  s.batches_ingested = batches_ingested_.load(std::memory_order_relaxed);
  s.batches_rejected = batches_rejected_.load(std::memory_order_relaxed);
  s.batches_failed = batches_failed_.load(std::memory_order_relaxed);
  s.trajectories_ingested = trajectories_ingested_.load(std::memory_order_relaxed);
  s.ingest_p50_s = ingest_latency_.quantile_seconds(0.50);
  s.ingest_mean_s = ingest_latency_.mean_seconds();
  s.snapshot_version = snapshot_version();
  s.snapshot_age_s = snapshot_age_seconds();
  return s;
}

namespace {

void append_histogram_json(std::ostringstream& out, const LatencyHistogram& h) {
  out << "{\"count\":" << h.count() << ",\"buckets_us\":[";
  // Trailing empty buckets are elided; emitted entries are cumulative-free
  // raw counts, bucket i spanning up to 2^i µs.
  std::size_t last = 0;
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    if (h.bucket_count(i) > 0) last = i;
  }
  for (std::size_t i = 0; i <= last; ++i) {
    if (i > 0) out << ',';
    out << h.bucket_count(i);
  }
  out << "]}";
}

}  // namespace

std::string Metrics::to_json() const {
  const MetricsSnapshot s = snapshot();
  std::ostringstream out;
  out.precision(9);
  out << "{\"queries\":{\"total\":" << s.queries_total
      << ",\"nearest_flow\":" << s.nearest_flow_queries
      << ",\"segment_flows\":" << s.segment_queries
      << ",\"top_k\":" << s.top_k_queries
      << ",\"empty_snapshot\":" << s.empty_snapshot_queries
      << ",\"latency_s\":{\"p50\":" << s.query_p50_s << ",\"p99\":" << s.query_p99_s
      << ",\"mean\":" << s.query_mean_s << "},\"histogram\":";
  append_histogram_json(out, query_latency_);
  out << "},\"ingest\":{\"batches\":" << s.batches_ingested
      << ",\"rejected\":" << s.batches_rejected << ",\"failed\":" << s.batches_failed
      << ",\"trajectories\":" << s.trajectories_ingested
      << ",\"latency_s\":{\"p50\":" << s.ingest_p50_s << ",\"mean\":" << s.ingest_mean_s
      << "},\"histogram\":";
  append_histogram_json(out, ingest_latency_);
  out << "},\"snapshot\":{\"version\":" << s.snapshot_version
      << ",\"age_s\":" << s.snapshot_age_s << "}}";
  return out.str();
}

}  // namespace neat::serve
