// Built-in serving metrics (counters + fixed-bucket latency histograms).
//
// Every mutation is a relaxed atomic increment, so recording from many query
// threads never serializes them; reads produce a consistent-enough snapshot
// for monitoring (each gauge is individually atomic, the set is not). The
// latency histogram uses fixed log2 buckets over microseconds — bucket i
// counts observations in [2^(i-1), 2^i) µs — which keeps recording a single
// fetch_add and makes percentile extraction trivial. The JSON schema is
// documented in DESIGN.md §"Serving architecture".
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace neat::serve {

/// Lock-free latency histogram with fixed log2 buckets over microseconds.
/// Bucket 0 counts observations below 1 µs; bucket i (i >= 1) counts
/// [2^(i-1), 2^i) µs; the last bucket absorbs everything above ~35 minutes.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  /// Records one observation. Thread-safe, wait-free.
  void record(double seconds);

  /// Total observations recorded.
  [[nodiscard]] std::uint64_t count() const;

  /// Mean latency in seconds (0 when empty).
  [[nodiscard]] double mean_seconds() const;

  /// Latency at quantile `q` in [0, 1], in seconds, as the upper edge of the
  /// bucket containing that quantile (0 when empty). Conservative: the true
  /// value is at most this.
  [[nodiscard]] double quantile_seconds(double q) const;

  /// Raw count of bucket `i`.
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const;

  /// Upper edge of bucket `i` in seconds (2^i µs).
  [[nodiscard]] static double bucket_upper_seconds(std::size_t i);

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_us_{0};
};

/// One coherent read of every serving metric, for export.
struct MetricsSnapshot {
  std::uint64_t queries_total{0};
  std::uint64_t nearest_flow_queries{0};
  std::uint64_t segment_queries{0};
  std::uint64_t top_k_queries{0};
  std::uint64_t empty_snapshot_queries{0};
  double query_p50_s{0.0};
  double query_p99_s{0.0};
  double query_mean_s{0.0};
  std::uint64_t batches_ingested{0};
  std::uint64_t batches_rejected{0};
  std::uint64_t batches_failed{0};
  std::uint64_t trajectories_ingested{0};
  double ingest_p50_s{0.0};
  double ingest_mean_s{0.0};
  std::uint64_t snapshot_version{0};
  double snapshot_age_s{0.0};
};

/// Shared metrics registry for one serving stack (QueryEngine + Ingest).
/// All methods are thread-safe.
class Metrics {
 public:
  enum class QueryKind { kNearestFlow, kSegmentFlows, kTopK };

  /// Records one finished query of `kind` taking `seconds`.
  void record_query(QueryKind kind, double seconds);

  /// Records a query answered while no snapshot was published yet.
  void record_empty_snapshot_query();

  /// Records one ingested batch: `trajectories` trips, `seconds` of
  /// clustering + publication work, resulting snapshot `version`.
  void record_ingest(std::size_t trajectories, double seconds, std::uint64_t version);

  /// Records a batch rejected by backpressure.
  void record_rejected_batch();

  /// Records a batch whose clustering failed (bad input); the service
  /// continues with the previous snapshot.
  void record_failed_batch();

  /// Seconds since the most recent snapshot publication (0 before the
  /// first publish).
  [[nodiscard]] double snapshot_age_seconds() const;

  /// Version of the most recently published snapshot (0 = none yet).
  [[nodiscard]] std::uint64_t snapshot_version() const;

  [[nodiscard]] const LatencyHistogram& query_latency() const { return query_latency_; }
  [[nodiscard]] const LatencyHistogram& ingest_latency() const { return ingest_latency_; }

  /// A coherent-enough point-in-time read of every gauge.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Serializes snapshot() plus both raw histograms as a JSON object (schema
  /// in DESIGN.md).
  [[nodiscard]] std::string to_json() const;

 private:
  LatencyHistogram query_latency_;
  LatencyHistogram ingest_latency_;
  std::atomic<std::uint64_t> nearest_flow_queries_{0};
  std::atomic<std::uint64_t> segment_queries_{0};
  std::atomic<std::uint64_t> top_k_queries_{0};
  std::atomic<std::uint64_t> empty_snapshot_queries_{0};
  std::atomic<std::uint64_t> batches_ingested_{0};
  std::atomic<std::uint64_t> batches_rejected_{0};
  std::atomic<std::uint64_t> batches_failed_{0};
  std::atomic<std::uint64_t> trajectories_ingested_{0};
  std::atomic<std::uint64_t> snapshot_version_{0};
  std::atomic<std::int64_t> last_publish_us_{0};  ///< steady-clock µs; 0 = never.
};

}  // namespace neat::serve
