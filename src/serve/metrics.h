// Built-in serving metrics (counters + fixed-bucket latency histograms).
//
// Since the unified observability layer landed, serve::Metrics is a typed
// facade over an obs::Registry: every counter/histogram lives in a registry
// under the `neat_serve_*` naming convention (DESIGN.md §"Observability"),
// so the same numbers are available as Prometheus text exposition. By
// default each Metrics owns a private registry (multiple serving stacks in
// one process stay isolated); pass one explicitly to aggregate into a
// shared registry such as obs::Registry::global().
//
// The mutation hot path is unchanged: every record is a relaxed atomic
// increment on a cached series reference, so recording from many query
// threads never serializes them. The latency histograms are the shared
// log2-bucket design (obs::Log2Histogram) — bucket i counts observations in
// [2^(i-1), 2^i) µs. The JSON schema of to_json() predates the registry and
// is kept byte-compatible; it is documented in DESIGN.md §"Serving
// architecture".
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "obs/registry.h"

namespace neat::serve {

/// Lock-free latency histogram with fixed log2 buckets over microseconds —
/// the design now shared with the whole pipeline through obs::Log2Histogram.
using LatencyHistogram = obs::Log2Histogram;

/// One coherent read of every serving metric, for export.
struct MetricsSnapshot {
  std::uint64_t queries_total{0};
  std::uint64_t nearest_flow_queries{0};
  std::uint64_t segment_queries{0};
  std::uint64_t top_k_queries{0};
  std::uint64_t empty_snapshot_queries{0};
  double query_p50_s{0.0};
  double query_p99_s{0.0};
  double query_mean_s{0.0};
  std::uint64_t batches_ingested{0};
  std::uint64_t batches_rejected{0};
  std::uint64_t batches_failed{0};
  std::uint64_t trajectories_ingested{0};
  double ingest_p50_s{0.0};
  double ingest_mean_s{0.0};
  std::uint64_t snapshot_version{0};
  /// Seconds since the last publication; negative (-1) when no snapshot has
  /// ever been published, so "never" and "just now" are distinguishable.
  double snapshot_age_s{-1.0};
};

/// Shared metrics registry for one serving stack (QueryEngine + Ingest).
/// All methods are thread-safe.
class Metrics {
 public:
  enum class QueryKind { kNearestFlow, kSegmentFlows, kTopK };

  /// Backs the metrics with `registry` (not owned; must outlive this
  /// object), or with a private owned registry when null.
  explicit Metrics(obs::Registry* registry = nullptr);

  /// Records one finished query of `kind` taking `seconds`.
  void record_query(QueryKind kind, double seconds);

  /// Records a query answered while no snapshot was published yet.
  void record_empty_snapshot_query();

  /// Records one ingested batch: `trajectories` trips, `seconds` of
  /// clustering + publication work, resulting snapshot `version`.
  void record_ingest(std::size_t trajectories, double seconds, std::uint64_t version);

  /// Records a batch rejected by backpressure.
  void record_rejected_batch();

  /// Records a batch whose clustering failed (bad input); the service
  /// continues with the previous snapshot.
  void record_failed_batch();

  /// Seconds since the most recent snapshot publication; -1.0 before the
  /// first publish (sentinel: ages are otherwise never negative).
  [[nodiscard]] double snapshot_age_seconds() const;

  /// Version of the most recently published snapshot (0 = none yet).
  [[nodiscard]] std::uint64_t snapshot_version() const;

  [[nodiscard]] const LatencyHistogram& query_latency() const { return query_latency_; }
  [[nodiscard]] const LatencyHistogram& ingest_latency() const { return ingest_latency_; }

  /// The registry backing this object — use registry().to_prometheus() for
  /// a metrics text dump.
  [[nodiscard]] const obs::Registry& registry() const { return *reg_; }

  /// A coherent-enough point-in-time read of every gauge.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Serializes snapshot() plus both raw histograms as a JSON object (schema
  /// in DESIGN.md; unchanged by the registry migration except `age_s`,
  /// which is -1 before the first publish).
  [[nodiscard]] std::string to_json() const;

 private:
  std::unique_ptr<obs::Registry> owned_;  ///< Present when no registry was passed.
  obs::Registry* reg_;
  // Cached series references; all creation happens in the constructor.
  obs::Log2Histogram& query_latency_;
  obs::Log2Histogram& ingest_latency_;
  obs::Counter& nearest_flow_queries_;
  obs::Counter& segment_queries_;
  obs::Counter& top_k_queries_;
  obs::Counter& empty_snapshot_queries_;
  obs::Counter& batches_ingested_;
  obs::Counter& batches_rejected_;
  obs::Counter& batches_failed_;
  obs::Counter& trajectories_ingested_;
  obs::Gauge& snapshot_version_;
  obs::Gauge& last_publish_gauge_;  ///< Steady-clock publish time, seconds.
  std::atomic<std::int64_t> last_publish_us_{-1};  ///< steady-clock µs; -1 = never.
};

}  // namespace neat::serve
