// Bounded multi-producer single-consumer queue with selectable backpressure.
//
// The ingest path between client submissions and the clustering worker.
// Producers either block until space frees up or get an immediate rejection
// (load shedding) — the two backpressure policies a serving front end needs.
// close() wakes everyone: blocked producers return kClosed, the consumer
// drains whatever is left and then sees end-of-stream.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/error.h"

namespace neat::serve {

/// Outcome of a push attempt.
enum class PushResult {
  kAccepted,  ///< Item enqueued.
  kRejected,  ///< Queue full and the caller asked not to wait.
  kClosed,    ///< Queue closed; item dropped.
};

template <class T>
class BoundedQueue {
 public:
  /// `capacity` must be >= 1 (throws neat::PreconditionError otherwise).
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    NEAT_EXPECT(capacity_ >= 1, "queue capacity must be at least 1");
  }

  /// Enqueues `item`. When full: blocks until space or close if `block`,
  /// returns kRejected immediately otherwise.
  PushResult push(T item, bool block) {
    std::unique_lock<std::mutex> lock(mu_);
    if (block) {
      not_full_.wait(lock, [this] { return closed_ || items_.size() < capacity_; });
    } else if (!closed_ && items_.size() >= capacity_) {
      return PushResult::kRejected;
    }
    if (closed_) return PushResult::kClosed;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return PushResult::kAccepted;
  }

  /// Dequeues the oldest item, blocking while the queue is empty and open.
  /// nullopt = closed and fully drained (end of stream).
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Closes the queue: subsequent pushes fail, pops drain remaining items.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_{false};
};

}  // namespace neat::serve
