// Immutable, versioned, queryable view of a clustering result.
//
// A ClusterSnapshot freezes one NEAT result (flow clusters + final clusters)
// together with the derived read indices the query paths need: a CSR
// segment → flows index and a density ranking. Instances are immutable after
// build(), so any number of threads may query one snapshot concurrently with
// no synchronization; writers publish a *new* snapshot through SnapshotStore
// (RCU-style pointer swap) instead of mutating a live one. Readers that hold
// a shared_ptr keep "their" snapshot alive for the whole query even when a
// newer version lands mid-flight.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/flow_cluster.h"
#include "core/refiner.h"
#include "roadnet/road_network.h"

namespace neat::serve {

/// Frozen clustering result plus read-optimized indices. Build instances
/// with ClusterSnapshot::build; never mutate one after publication.
class ClusterSnapshot {
 public:
  /// Builds a snapshot of `flows` / `final_clusters` over `net`. `version`
  /// is the publication sequence number (must be >= 1; monotonicity across
  /// publications is enforced by SnapshotStore). Flow routes must reference
  /// valid segments of `net` and final clusters must reference valid flow
  /// indices (throws neat::PreconditionError otherwise).
  [[nodiscard]] static std::shared_ptr<const ClusterSnapshot> build(
      const roadnet::RoadNetwork& net, std::vector<FlowCluster> flows,
      std::vector<FinalCluster> final_clusters, std::uint64_t version);

  /// Publication sequence number, >= 1.
  [[nodiscard]] std::uint64_t version() const { return version_; }

  [[nodiscard]] const std::vector<FlowCluster>& flows() const { return flows_; }
  [[nodiscard]] const std::vector<FinalCluster>& final_clusters() const {
    return final_clusters_;
  }

  /// Indices of the flows whose representative route traverses `sid`,
  /// ascending. Empty for segments carrying no flow (or out-of-range ids).
  [[nodiscard]] std::span<const std::uint32_t> flows_on_segment(SegmentId sid) const;

  /// Index of the final cluster containing flow `flow_idx`, or -1 when the
  /// flow belongs to no final cluster.
  [[nodiscard]] int final_cluster_of(std::uint32_t flow_idx) const;

  /// Flow indices ranked by trajectory cardinality descending (ties: longer
  /// route first, then lower index — deterministic).
  [[nodiscard]] std::span<const std::uint32_t> flows_by_density() const {
    return by_density_;
  }

  /// Segment count of the network the snapshot was built against.
  [[nodiscard]] std::size_t segment_count() const { return seg_offsets_.size() - 1; }

  /// Total trajectories participating in any flow (with multiplicity across
  /// flows collapsed per flow, not globally).
  [[nodiscard]] std::size_t total_participants() const { return total_participants_; }

  /// Full internal-consistency check, for tests and debug builds: CSR offsets
  /// monotonic, every indexed flow in range and actually routed over the
  /// segment, final_cluster_of matches final_clusters, density ranking is a
  /// permutation in the documented order. Returns true when consistent.
  [[nodiscard]] bool validate(const roadnet::RoadNetwork& net) const;

 private:
  ClusterSnapshot() = default;

  std::uint64_t version_{0};
  std::vector<FlowCluster> flows_;
  std::vector<FinalCluster> final_clusters_;
  std::vector<int> final_of_;                ///< Per flow; -1 = unclustered.
  std::vector<std::uint32_t> seg_offsets_;   ///< CSR offsets, segment_count+1.
  std::vector<std::uint32_t> seg_flow_ids_;  ///< CSR payload: flow indices.
  std::vector<std::uint32_t> by_density_;
  std::size_t total_participants_{0};
};

/// Single-slot RCU-style snapshot holder. current() copies the shared_ptr,
/// pinning "your" snapshot for the whole query; publish() swaps in a fresh
/// one. Both sides hold a plain mutex only for the pointer copy/swap itself
/// (a refcount bump — snapshots are built *outside* the store), so a publish
/// never stalls readers measurably; bench/serve_latency verifies this.
/// Versions must be strictly increasing (throws neat::PreconditionError
/// otherwise), so every reader observes a monotonic version sequence.
///
/// Implementation note: a std::atomic<std::shared_ptr> slot would promise
/// lock-free-ish reads, but libstdc++'s _Sp_atomic releases its internal
/// spin-lock with a relaxed RMW, so the protected pointer accesses are not
/// happens-before ordered under the formal memory model — ThreadSanitizer
/// (correctly) reports them. The mutex slot is provably race-free and
/// indistinguishable from the atomic slot in the serve_latency benchmark.
class SnapshotStore {
 public:
  SnapshotStore() = default;
  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// The most recently published snapshot; nullptr before the first publish.
  [[nodiscard]] std::shared_ptr<const ClusterSnapshot> current() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return snapshot_;
  }

  /// Atomically replaces the current snapshot. `snapshot` must be non-null
  /// with a version strictly greater than the current one.
  void publish(std::shared_ptr<const ClusterSnapshot> snapshot);

  /// Version of the current snapshot (0 before the first publish).
  [[nodiscard]] std::uint64_t version() const;

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const ClusterSnapshot> snapshot_;
};

}  // namespace neat::serve
