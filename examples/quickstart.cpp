// Quickstart: build a small road network, create a handful of trajectories,
// run the full three-phase NEAT clustering, and print every intermediate
// artifact (base clusters, flow clusters, final clusters).
//
//   $ ./quickstart
#include <iostream>

#include "core/clusterer.h"
#include "roadnet/builder.h"
#include "traj/trajectory.h"

using namespace neat;

int main() {
  // 1. A toy road network: a main east-west avenue of four segments with two
  //    side streets hanging off its middle junctions.
  //
  //        n5            n6
  //         |             |
  //   n0 -- n1 -- n2 -- n3 -- n4
  roadnet::RoadNetworkBuilder builder;
  std::vector<NodeId> n;
  n.push_back(builder.add_node({0, 0}));      // n0
  n.push_back(builder.add_node({100, 0}));    // n1
  n.push_back(builder.add_node({200, 0}));    // n2
  n.push_back(builder.add_node({300, 0}));    // n3
  n.push_back(builder.add_node({400, 0}));    // n4
  n.push_back(builder.add_node({100, 100}));  // n5
  n.push_back(builder.add_node({300, 100}));  // n6
  builder.add_segment(n[0], n[1], 13.9);  // sid 0
  builder.add_segment(n[1], n[2], 13.9);  // sid 1
  builder.add_segment(n[2], n[3], 13.9);  // sid 2
  builder.add_segment(n[3], n[4], 13.9);  // sid 3
  builder.add_segment(n[1], n[5], 8.3);   // sid 4 (side street)
  builder.add_segment(n[3], n[6], 8.3);   // sid 5 (side street)
  const roadnet::RoadNetwork net = builder.build();
  std::cout << "network: " << net.node_count() << " junctions, " << net.segment_count()
            << " segments\n";

  // 2. Five trips. Most traffic runs along the avenue; one trip turns off
  //    onto a side street.
  const auto trip = [&](std::int64_t id, std::vector<std::pair<SegmentId, Point>> samples) {
    traj::Trajectory tr{TrajectoryId(id)};
    double t = 0.0;
    for (const auto& [sid, pos] : samples) {
      tr.append(traj::Location{sid, pos, t, false});
      t += 5.0;
    }
    return tr;
  };
  traj::TrajectoryDataset data;
  for (std::int64_t id = 1; id <= 4; ++id) {
    // Avenue end to end; samples at segment midpoints.
    data.add(trip(id, {{SegmentId(0), {50, 0}},
                       {SegmentId(1), {150, 0}},
                       {SegmentId(2), {250, 0}},
                       {SegmentId(3), {350, 0}}}));
  }
  data.add(trip(5, {{SegmentId(0), {50, 0}}, {SegmentId(4), {100, 50}}}));
  std::cout << "dataset: " << data.size() << " trajectories, " << data.total_points()
            << " points\n\n";

  // 3. Run opt-NEAT (all three phases) with default parameters.
  Config config;
  config.refine.epsilon = 500.0;  // Phase 3 merge radius in network metres
  const NeatClusterer clusterer(net, config);
  const Result result = clusterer.run(data);

  // 4. Inspect the output of every phase.
  std::cout << "phase 1: " << result.num_fragments << " t-fragments in "
            << result.base_clusters.size() << " base clusters\n";
  for (const BaseCluster& c : result.base_clusters) {
    std::cout << "  segment " << c.sid() << ": density " << c.density()
              << ", cardinality " << c.cardinality() << '\n';
  }

  std::cout << "\nphase 2: " << result.flow_clusters.size() << " flow clusters (minCard "
            << result.effective_min_card << "), " << result.filtered_flows.size()
            << " filtered\n";
  for (const FlowCluster& f : result.flow_clusters) {
    std::cout << "  flow over segments [";
    for (std::size_t i = 0; i < f.route.size(); ++i) {
      std::cout << (i > 0 ? " " : "") << f.route[i];
    }
    std::cout << "], route length " << f.route_length << " m, " << f.cardinality()
              << " trajectories\n";
  }

  std::cout << "\nphase 3: " << result.final_clusters.size() << " final clusters\n";
  for (std::size_t i = 0; i < result.final_clusters.size(); ++i) {
    const FinalCluster& c = result.final_clusters[i];
    std::cout << "  cluster " << i << ": " << c.flows.size() << " flows, total route "
              << c.total_route_length << " m, " << c.cardinality() << " trajectories\n";
  }

  std::cout << "\ntimings: phase1 " << result.timing.phase1_s * 1000 << " ms, phase2 "
            << result.timing.phase2_s * 1000 << " ms, phase3 "
            << result.timing.phase3_s * 1000 << " ms\n";
  return 0;
}
