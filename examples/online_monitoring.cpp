// Online traffic monitoring with incremental NEAT (paper §III-C):
// trajectory batches arrive over time; Phases 1-2 run per batch and the
// accumulated flow clusters are re-refined after every batch, so the
// operator always has a fresh picture of the city's major flows.
//
//   $ ./online_monitoring
#include <iostream>

#include "core/incremental.h"
#include "eval/flow_diff.h"
#include "roadnet/generators.h"
#include "sim/mobility_simulator.h"

using namespace neat;

int main() {
  roadnet::CityParams params;
  params.rows = 24;
  params.cols = 24;
  params.spacing_m = 135.0;
  params.seed = 31;
  const roadnet::RoadNetwork net = roadnet::make_city(params);

  const sim::SimConfig sim_cfg = sim::default_config(net, 3, 3);
  const sim::MobilitySimulator simulator(net, sim_cfg);

  Config config;
  config.refine.epsilon = 1200.0;
  IncrementalClusterer monitor(net, config);

  // Six five-minute batches arrive; ids must be globally unique, so each
  // batch re-tags its trajectories with a disjoint id range.
  constexpr std::size_t kBatchSize = 60;
  for (int batch = 0; batch < 6; ++batch) {
    const traj::TrajectoryDataset raw =
        simulator.generate(kBatchSize, 1000 + static_cast<std::uint64_t>(batch));
    traj::TrajectoryDataset tagged;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      traj::Trajectory tr(TrajectoryId(batch * 10000 + static_cast<std::int64_t>(i)),
                          raw[i].points());
      tagged.add(std::move(tr));
    }

    const std::vector<FlowCluster> before = monitor.flows();
    const auto& clusters = monitor.add_batch(tagged);

    double longest = 0.0;
    for (const FlowCluster& f : monitor.flows()) {
      longest = std::max(longest, f.route_length);
    }
    // What changed since the previous picture?
    const eval::FlowDiff diff = eval::diff_flows(before, monitor.flows(), 0.5);
    std::cout << "after batch " << batch + 1 << ": " << monitor.flows().size()
              << " accumulated flows, " << clusters.size()
              << " merged traffic clusters, longest corridor " << longest / 1000.0
              << " km (" << diff.appeared.size() << " new corridors, "
              << diff.matched_count() << " persisting)\n";
  }

  // Final situation report: the merged clusters, largest first.
  std::cout << "\nfinal traffic picture:\n";
  for (std::size_t i = 0; i < monitor.clusters().size(); ++i) {
    const FinalCluster& c = monitor.clusters()[i];
    std::cout << "  cluster " << i + 1 << ": " << c.flows.size() << " flows, "
              << c.total_route_length / 1000.0 << " km of corridor, "
              << c.cardinality() << " distinct vehicles\n";
  }
  return 0;
}
