// neat_convert — streams a trajectory CSV into the binary columnar format.
//
//   $ ./neat_convert trips.csv trips.neatcol [--no-verify]
//
// The conversion is bounded-memory: rows stream through the fast CSV parser
// one trajectory at a time into per-column spill files, so any dataset that
// fits on disk converts, regardless of RAM. Unless --no-verify is given,
// the written file is reopened through the mmap-backed store afterwards,
// which re-checks the header, section layout and footer checksum end to
// end. Cluster the result with
//   $ ./neat_cli --network net.csv --trajectories trips.neatcol --columnar
#include <iostream>
#include <string>

#include "common/error.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "store/columnar_store.h"
#include "traj/columnar.h"

using namespace neat;

int main(int argc, char** argv) {
  std::string csv_path;
  std::string out_path;
  bool verify = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--no-verify") {
      verify = false;
    } else if (csv_path.empty()) {
      csv_path = arg;
    } else if (out_path.empty()) {
      out_path = arg;
    } else {
      std::cerr << "error: unexpected argument '" << arg << "'\n";
      return 2;
    }
  }
  if (csv_path.empty() || out_path.empty()) {
    std::cerr << "usage: neat_convert TRIPS.csv OUT.neatcol [--no-verify]\n";
    return 2;
  }

  try {
    Stopwatch watch;
    const traj::ColumnarConvertStats stats =
        traj::convert_csv_to_columnar(csv_path, out_path);
    std::cout << "converted " << stats.trajectories << " trajectories ("
              << stats.points << " points) in " << format_fixed(watch.elapsed_seconds(), 2)
              << " s\n";
    if (verify) {
      const store::ColumnarTrajectoryStore store(out_path);
      std::cout << "verified " << out_path << ": " << store.bytes_mapped()
                << " bytes, checksum OK\n";
    } else {
      std::cout << "wrote " << out_path << " (verification skipped)\n";
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
