// Load generator for the serving subsystem: N client threads fire queries
// at a QueryEngine while a feeder thread keeps uploading trajectory batches
// through the IngestService, so snapshots are republished under live read
// traffic. Prints per-run throughput and the built-in metrics JSON.
//
//   $ ./serve_load_gen [query_threads] [batches] [trips_per_batch]
#include <atomic>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "roadnet/generators.h"
#include "serve/ingest_service.h"
#include "serve/query_engine.h"
#include "sim/mobility_simulator.h"

using namespace neat;

int main(int argc, char** argv) {
  const unsigned query_threads = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  const std::size_t batches = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 5;
  const std::size_t trips = argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 80;

  roadnet::CityParams params;
  params.rows = 20;
  params.cols = 20;
  params.seed = 11;
  const roadnet::RoadNetwork net = roadnet::make_city(params);
  const roadnet::Bounds bb = net.bounding_box();

  Config cfg;
  cfg.refine.epsilon = 1500.0;
  serve::SnapshotStore store;
  serve::Metrics metrics;
  serve::IngestService ingest(net, cfg, store, metrics);
  const serve::QueryEngine engine(net, store, &metrics);

  // Feeder: upload all batches, then raise the done flag.
  std::atomic<bool> done{false};
  const sim::SimConfig sim_cfg = sim::default_config(net, 2, 3);
  const sim::MobilitySimulator simulator(net, sim_cfg);
  std::thread feeder([&] {
    std::int64_t next_id = 0;
    for (std::size_t b = 0; b < batches; ++b) {
      const traj::TrajectoryDataset raw =
          simulator.generate(trips, 900 + static_cast<std::uint64_t>(b));
      traj::TrajectoryDataset batch;
      for (std::size_t i = 0; i < raw.size(); ++i) {
        batch.add(traj::Trajectory(TrajectoryId(next_id++), raw[i].points()));
      }
      ingest.submit(std::move(batch));
    }
    ingest.flush();
    done.store(true, std::memory_order_release);
  });

  // Clients: mixed query workload until the feeder finishes.
  std::atomic<std::uint64_t> answered{0};
  std::vector<std::thread> clients;
  const Stopwatch wall;
  for (unsigned t = 0; t < query_threads; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(1000 + t);
      while (!done.load(std::memory_order_acquire)) {
        const Point p{rng.uniform(bb.min.x, bb.max.x), rng.uniform(bb.min.y, bb.max.y)};
        (void)engine.nearest_flow(p, 500.0);
        (void)engine.top_k_flows(3);
        const auto sid = SegmentId(static_cast<std::int32_t>(
            rng.uniform_int(0, static_cast<int>(net.segment_count()) - 1)));
        (void)engine.flows_on_segment(sid);
        answered.fetch_add(3, std::memory_order_relaxed);
      }
    });
  }
  feeder.join();
  for (auto& c : clients) c.join();
  const double secs = wall.elapsed_seconds();

  std::cout << query_threads << " query threads, " << batches << " batches of " << trips
            << " trips\n"
            << answered.load() << " queries in " << secs << " s ("
            << static_cast<std::uint64_t>(answered.load() / secs) << " q/s), final snapshot v"
            << store.version() << '\n'
            << "metrics: " << metrics.to_json() << '\n';
  return 0;
}
