// Load generator for the serving subsystem: N client threads fire queries
// at a QueryEngine while a feeder thread keeps uploading trajectory batches
// through the IngestService, so snapshots are republished under live read
// traffic. Prints per-run throughput and the built-in metrics JSON.
//
// Two modes:
//   in-process (default)  clients call the QueryEngine directly — measures
//                         the engine itself, no serialization or sockets;
//   --http                the process hosts its own net::HttpServer with the
//                         /v1/* QueryService and the clients talk to it over
//                         loopback HTTP (one connection per request, exactly
//                         like external traffic), reporting client-observed
//                         per-endpoint latency quantiles.
//
// --admin-port additionally serves the admin plane (/metrics, /statusz,
// /profilez, ...) on 127.0.0.1:PORT for the duration of the run — curling
// /profilez?seconds=1 while the load runs yields a folded CPU profile of
// the whole serving stack under pressure.
//
//   $ ./serve_load_gen [--http] [--admin-port PORT]
//                      [--log-level LEVEL] [--log-out FILE]
//                      [query_threads] [batches] [trips_per_batch]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/query_service.h"
#include "obs/http_exporter.h"
#include "obs/log/log.h"
#include "obs/registry.h"
#include "roadnet/generators.h"
#include "serve/ingest_service.h"
#include "serve/query_engine.h"
#include "sim/mobility_simulator.h"
#include "sim/trip_planner.h"

using namespace neat;

namespace {

/// Client-side latency + count of one /v1/* endpoint under load.
struct EndpointStats {
  const char* target;
  serve::LatencyHistogram latency;  ///< Guarded by mu (many client threads).
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> failures{0};  ///< Non-2xx/404 answers.
  std::mutex mu;

  void record(double seconds, int code) {
    requests.fetch_add(1, std::memory_order_relaxed);
    // 404s (empty radius, one-way dead ends) are correct answers under a
    // random workload; anything else non-200 is a failure worth surfacing.
    if (code != 200 && code != 404) failures.fetch_add(1, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(mu);
    latency.record(seconds);
  }
};

}  // namespace

int main(int argc, char** argv) {
  bool http_mode = false;
  int admin_port = -1;  // -1 = no admin server; 0 = ephemeral port.
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--http") {
      http_mode = true;
    } else if (arg == "--admin-port") {
      if (i + 1 >= argc) {
        std::cerr << "error: missing value after --admin-port\n";
        return 2;
      }
      admin_port = std::atoi(argv[++i]);
      if (admin_port < 0 || admin_port > 65535) {
        std::cerr << "error: --admin-port must be in [0, 65535]\n";
        return 2;
      }
    } else if (arg == "--log-level") {
      if (i + 1 >= argc) {
        std::cerr << "error: missing value after --log-level\n";
        return 2;
      }
      const auto level = obs::log::parse_level(argv[++i]);
      if (!level.has_value()) {
        std::cerr << "error: unknown log level '" << argv[i]
                  << "' (trace|debug|info|warn|error|off)\n";
        return 2;
      }
      obs::log::Logger::global().set_default_level(*level);
    } else if (arg == "--log-out") {
      if (i + 1 >= argc) {
        std::cerr << "error: missing value after --log-out\n";
        return 2;
      }
      if (!obs::log::Logger::global().set_output_file(argv[++i])) {
        std::cerr << "error: cannot open '" << argv[i] << "' for logging\n";
        return 2;
      }
    } else {
      positional.push_back(arg);
    }
  }
  const unsigned query_threads =
      positional.size() > 0 ? static_cast<unsigned>(std::atoi(positional[0].c_str())) : 4;
  const std::size_t batches =
      positional.size() > 1 ? static_cast<std::size_t>(std::atoi(positional[1].c_str())) : 5;
  const std::size_t trips =
      positional.size() > 2 ? static_cast<std::size_t>(std::atoi(positional[2].c_str())) : 80;

  roadnet::CityParams params;
  params.rows = 20;
  params.cols = 20;
  params.seed = 11;
  const roadnet::RoadNetwork net = roadnet::make_city(params);
  const roadnet::Bounds bb = net.bounding_box();

  Config cfg;
  cfg.refine.epsilon = 1500.0;
  serve::SnapshotStore store;
  serve::Metrics metrics;
  serve::IngestService ingest(net, cfg, store, metrics);
  const serve::QueryEngine engine(net, store, &metrics);

  // The self-hosted HTTP edge of --http mode (idle otherwise). Ephemeral
  // port, worker pool sized to the client count so the clients, not the
  // server, are the bottleneck being exercised.
  obs::Registry registry;
  sim::TripPlanner planner(net, roadnet::Metric::kDistance);
  net::QueryService service(net, engine, &planner, registry);
  net::HttpServerOptions sopts;
  sopts.worker_threads = std::max(2u, query_threads);
  sopts.max_pending_connections = 4 * std::max(1u, query_threads);
  sopts.registry = &registry;
  net::HttpServer server(sopts);
  service.register_routes(server);
  if (http_mode) {
    server.start();
    std::cout << "http edge: listening on 127.0.0.1:" << server.port() << '\n';
  }

  // Optional admin plane: lets an operator (or CI) hit /profilez while the
  // load is in flight. Serves the same private registry as the query edge.
  std::unique_ptr<obs::HttpExporter> admin;
  if (admin_port >= 0) {
    obs::HttpExporterOptions hopts;
    hopts.port = static_cast<std::uint16_t>(admin_port);
    admin = std::make_unique<obs::HttpExporter>(registry, hopts);
    // The machine-readable line smoke tests grep for the bound port.
    std::cout << "admin: listening on http://127.0.0.1:" << admin->port()
              << " (/metrics /healthz /readyz /statusz /tracez /profilez /logz)\n"
              << std::flush;
  }

  // Feeder: upload all batches, then raise the done flag.
  std::atomic<bool> done{false};
  const sim::SimConfig sim_cfg = sim::default_config(net, 2, 3);
  const sim::MobilitySimulator simulator(net, sim_cfg);
  std::thread feeder([&] {
    std::int64_t next_id = 0;
    for (std::size_t b = 0; b < batches; ++b) {
      const traj::TrajectoryDataset raw =
          simulator.generate(trips, 900 + static_cast<std::uint64_t>(b));
      traj::TrajectoryDataset batch;
      for (std::size_t i = 0; i < raw.size(); ++i) {
        batch.add(traj::Trajectory(TrajectoryId(next_id++), raw[i].points()));
      }
      ingest.submit(std::move(batch));
    }
    ingest.flush();
    done.store(true, std::memory_order_release);
  });

  // Clients: mixed query workload until the feeder finishes.
  EndpointStats stats[4] = {
      {"/v1/nearest", {}, {}, {}, {}},
      {"/v1/segment", {}, {}, {}, {}},
      {"/v1/topk", {}, {}, {}, {}},
      {"/v1/route", {}, {}, {}, {}},
  };
  std::atomic<std::uint64_t> answered{0};
  std::vector<std::thread> clients;
  const Stopwatch wall;
  for (unsigned t = 0; t < query_threads; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(1000 + t);
      // Wait for the first publish: before it the service answers 503
      // no_snapshot by contract, which would show up here as failures.
      while (store.version() == 0 && !done.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      while (!done.load(std::memory_order_acquire)) {
        const Point p{rng.uniform(bb.min.x, bb.max.x), rng.uniform(bb.min.y, bb.max.y)};
        const auto sid = rng.uniform_int(0, static_cast<int>(net.segment_count()) - 1);
        if (http_mode) {
          const std::string targets[4] = {
              str_cat("/v1/nearest?x=", format_fixed(p.x, 1), "&y=",
                      format_fixed(p.y, 1), "&radius=500"),
              str_cat("/v1/segment?sid=", sid),
              "/v1/topk?k=3",
              str_cat("/v1/route?from=",
                      rng.uniform_int(0, static_cast<int>(net.node_count()) - 1),
                      "&to=",
                      rng.uniform_int(0, static_cast<int>(net.node_count()) - 1)),
          };
          for (int e = 0; e < 4; ++e) {
            const Stopwatch req;
            const net::HttpResult r = net::http_get(server.port(), targets[e]);
            stats[e].record(req.elapsed_seconds(), r.code);
          }
          answered.fetch_add(4, std::memory_order_relaxed);
        } else {
          (void)engine.nearest_flow(p, 500.0);
          (void)engine.top_k_flows(3);
          (void)engine.flows_on_segment(SegmentId(static_cast<std::int32_t>(sid)));
          answered.fetch_add(3, std::memory_order_relaxed);
        }
      }
    });
  }
  feeder.join();
  for (auto& c : clients) c.join();
  const double secs = wall.elapsed_seconds();

  std::cout << query_threads << " query threads, " << batches << " batches of " << trips
            << " trips" << (http_mode ? " [HTTP mode]" : "") << '\n'
            << answered.load() << " queries in " << secs << " s ("
            << static_cast<std::uint64_t>(answered.load() / secs) << " q/s), final snapshot v"
            << store.version() << '\n';
  if (http_mode) {
    for (EndpointStats& s : stats) {
      std::cout << s.target << ": " << s.requests.load() << " requests, "
                << s.failures.load() << " failures, p50 "
                << format_fixed(s.latency.quantile_seconds(0.5) * 1e6, 1)
                << " us, p99 " << format_fixed(s.latency.quantile_seconds(0.99) * 1e6, 1)
                << " us\n";
    }
  }
  std::cout << "metrics: " << metrics.to_json() << '\n';
  return 0;
}
