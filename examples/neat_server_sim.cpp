// Simulation of the paper's 3-tier NEAT system architecture (§II-C):
// "Each client node acts as a mobile device which records its locations,
// sends its trajectories to a NEAT server and makes requests to the server
// to get trajectory clustering results ... NEAT server also distributes
// trajectory datasets across multiple nodes in a cluster. These data nodes
// can perform some data preprocessing tasks."
//
// This example runs the whole loop in-process on the real serving subsystem
// (src/serve/):
//   clients    -> upload trip batches through IngestService (bounded queue)
//   server     -> background worker clusters each batch incrementally and
//                 publishes an immutable, versioned ClusterSnapshot
//   clients    -> query the QueryEngine ("flows near me", "what runs on this
//                 road", "busiest corridors") against the live snapshot
//   operations -> scrape the built-in metrics as JSON
// The final snapshot is also persisted with core/result_io, the durable
// half of the serving story.
//
//   $ ./neat_server_sim
#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/result_io.h"
#include "eval/geojson.h"
#include "roadnet/generators.h"
#include "serve/ingest_service.h"
#include "serve/query_engine.h"
#include "sim/mobility_simulator.h"

using namespace neat;

int main() {
  // The shared map every tier works against.
  roadnet::CityParams params;
  params.rows = 26;
  params.cols = 26;
  params.spacing_m = 135.0;
  params.seed = 2;
  const roadnet::RoadNetwork net = roadnet::make_city(params);
  std::cout << "map: " << net.segment_count() << " segments\n";

  // --- the serving stack: snapshot store + metrics + ingest + query engine.
  Config cfg;
  cfg.refine.epsilon = 2000.0;
  cfg.phase1_threads = 2;
  serve::SnapshotStore store;
  serve::Metrics metrics;
  serve::IngestOptions opts;
  opts.queue_capacity = 4;
  serve::IngestService ingest(net, cfg, store, metrics, opts);
  const serve::QueryEngine engine(net, store, &metrics);

  // --- tier 1: clients record trips and upload them in batches. Each batch
  // is clustered incrementally by the background worker; a new snapshot
  // version appears after each one without ever blocking queries.
  const sim::SimConfig sim_cfg = sim::default_config(net, 2, 3);
  const sim::MobilitySimulator simulator(net, sim_cfg);
  constexpr std::size_t kBatches = 3;
  constexpr std::size_t kTripsPerBatch = 100;
  std::int64_t next_id = 0;
  for (std::size_t b = 0; b < kBatches; ++b) {
    const traj::TrajectoryDataset raw =
        simulator.generate(kTripsPerBatch, 77 + static_cast<std::uint64_t>(b));
    traj::TrajectoryDataset batch;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      batch.add(traj::Trajectory(TrajectoryId(next_id++), raw[i].points()));
    }
    ingest.submit(std::move(batch));
    std::cout << "client upload: batch " << b + 1 << " (" << kTripsPerBatch
              << " trips) queued\n";
  }
  ingest.flush();
  const auto snap = engine.snapshot();
  std::cout << "server: snapshot v" << snap->version() << " live — "
            << snap->flows().size() << " flows, " << snap->final_clusters().size()
            << " clusters\n";

  // --- tier 3: client queries against the live snapshot.
  const roadnet::Bounds bb = net.bounding_box();
  const Point client{(bb.min.x + bb.max.x) / 2, (bb.min.y + bb.max.y) / 2};
  if (const auto hit = engine.nearest_flow(client, 1500.0)) {
    std::cout << "client at city center: nearest flow #" << hit->flow << " ("
              << hit->cardinality << " trips) passes " << hit->distance_m
              << " m away on segment " << hit->segment << '\n';
    const serve::SegmentFlows on_seg = engine.flows_on_segment(hit->segment);
    std::cout << "that road carries " << on_seg.flows.size() << " flow(s)\n";
  } else {
    std::cout << "client at city center: no flow within 1500 m\n";
  }
  const serve::TopFlows top = engine.top_k_flows(5);
  std::cout << "busiest corridors (top " << top.flows.size() << "):\n";
  for (const serve::RankedFlow& f : top.flows) {
    std::cout << "  flow #" << f.flow << ": " << f.cardinality << " trips over "
              << f.route_length_m << " m (cluster " << f.final_cluster << ")\n";
  }

  // --- operations: scrape the built-in metrics, both as the legacy JSON
  // blob and as the Prometheus text exposition a real scraper would pull.
  std::cout << "metrics: " << metrics.to_json() << '\n';
  std::cout << "--- prometheus exposition ---\n"
            << metrics.registry().to_prometheus() << "-----------------------------\n";

  // --- durability: persist the served snapshot and a GeoJSON payload any
  // map client could render.
  std::filesystem::create_directories("server_out");
  const ClusteringSnapshot persisted{snap->flows(), snap->final_clusters()};
  save_snapshot(persisted, "server_out/snapshot.csv");
  const std::string geojson =
      eval::flows_to_geojson(net, snap->flows(), &snap->final_clusters());
  std::ofstream("server_out/flows.geojson") << geojson;
  std::cout << "server_out/snapshot.csv and flows.geojson written ("
            << geojson.size() << " bytes of GeoJSON)\n";
  return 0;
}
