// Simulation of the paper's 3-tier NEAT system architecture (§II-C):
// "Each client node acts as a mobile device which records its locations,
// sends its trajectories to a NEAT server and makes requests to the server
// to get trajectory clustering results ... NEAT server also distributes
// trajectory datasets across multiple nodes in a cluster. These data nodes
// can perform some data preprocessing tasks."
//
// This example runs the whole loop in-process on the real serving subsystem
// (src/serve/):
//   clients    -> upload trip batches through IngestService (bounded queue)
//   server     -> background worker clusters each batch incrementally and
//                 publishes an immutable, versioned ClusterSnapshot
//   clients    -> query the QueryEngine ("flows near me", "what runs on this
//                 road", "busiest corridors") against the live snapshot
//   operations -> scrape the live admin plane over HTTP: /metrics (Prometheus),
//                 /healthz, /readyz (503 until the first snapshot), /statusz
//                 (build + snapshot + backlog JSON) and /tracez (recent spans)
// Every upload and query carries a request-correlation trace_id, so one
// /tracez (or Perfetto) search follows one request end-to-end. The final
// snapshot is also persisted with core/result_io, the durable half of the
// serving story.
//
//   $ ./neat_server_sim --admin-port 9464 --sample-period-ms 500 --linger-s 60
//   $ curl localhost:9464/metrics
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "common/error.h"
#include "common/string_util.h"
#include "core/result_io.h"
#include "eval/geojson.h"
#include "net/http_server.h"
#include "net/query_service.h"
#include "obs/http_exporter.h"
#include "obs/log/log.h"
#include "obs/prof/profiler.h"
#include "obs/registry.h"
#include "obs/resource_sampler.h"
#include "obs/trace.h"
#include "roadnet/generators.h"
#include "serve/ingest_service.h"
#include "serve/query_engine.h"
#include "sim/mobility_simulator.h"

using namespace neat;

namespace {

struct SimOptions {
  int admin_port{-1};        ///< -1 = no admin server; 0 = ephemeral port.
  int query_port{-1};        ///< -1 = no public query plane; 0 = ephemeral.
  int sample_period_ms{1000};
  int linger_s{0};           ///< Keep serving this long after the workload.
  int slow_ms{500};          ///< Slow-request log threshold; 0 disables.
  std::string profile_out;   ///< Folded CPU profile file ("" = profiler off).
  std::string log_out;       ///< JSON log lines file ("" = stderr).
  obs::log::Level log_level{obs::log::Level::kInfo};
  DistanceEngine engine{DistanceEngine::kDijkstra};
};

[[noreturn]] void usage(const std::string& error) {
  std::cerr << "error: " << error << "\n\n"
            << "usage: neat_server_sim [--admin-port PORT] [--query-port PORT]\n"
            << "                       [--sample-period-ms MS] [--linger-s SECONDS]\n"
            << "                       [--distance-engine dijkstra|alt|ch|ch-table]\n"
            << "                       [--profile-out FILE]\n"
            << "  --admin-port PORT       serve /metrics, /healthz, /readyz, /statusz\n"
            << "                          and /tracez on 127.0.0.1:PORT (0 = pick a\n"
            << "                          free port; omit for no admin server)\n"
            << "  --query-port PORT       serve the public query plane /v1/nearest,\n"
            << "                          /v1/segment, /v1/topk and /v1/route on\n"
            << "                          127.0.0.1:PORT (0 = pick a free port; omit\n"
            << "                          for no query server)\n"
            << "  --sample-period-ms MS   resource sampler period (default 1000)\n"
            << "  --linger-s SECONDS      keep the server up after the simulated\n"
            << "                          workload so it can be scraped (default 0)\n"
            << "  --distance-engine E     Phase 3 distance backend for ingest\n"
            << "                          re-clustering; 'ch' also routes the\n"
            << "                          simulated trips through the hierarchy\n"
            << "  --profile-out FILE      sample the CPU across the simulated\n"
            << "                          workload and write the folded profile\n"
            << "                          (render: python3 tools/fold2svg.py)\n"
            << "  --log-level LEVEL       structured log level: trace|debug|info|\n"
            << "                          warn|error|off (default info)\n"
            << "  --log-out FILE          write JSON log lines to FILE instead of\n"
            << "                          stderr\n"
            << "  --slow-ms MS            slow-request log threshold on the query\n"
            << "                          plane (default 500; 0 disables)\n";
  std::exit(2);
}

SimOptions parse_args(int argc, char** argv) {
  SimOptions opt;
  const auto next_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(str_cat("missing value after ", argv[i]));
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg == "--admin-port") {
        const std::int64_t p = parse_int(next_value(i));
        if (p < 0 || p > 65535) usage("--admin-port must be in [0, 65535]");
        opt.admin_port = static_cast<int>(p);
      } else if (arg == "--query-port") {
        const std::int64_t p = parse_int(next_value(i));
        if (p < 0 || p > 65535) usage("--query-port must be in [0, 65535]");
        opt.query_port = static_cast<int>(p);
      } else if (arg == "--sample-period-ms") {
        const std::int64_t ms = parse_int(next_value(i));
        if (ms < 10) usage("--sample-period-ms must be >= 10");
        opt.sample_period_ms = static_cast<int>(ms);
      } else if (arg == "--linger-s") {
        const std::int64_t s = parse_int(next_value(i));
        if (s < 0) usage("--linger-s must be >= 0");
        opt.linger_s = static_cast<int>(s);
      } else if (arg == "--profile-out") {
        opt.profile_out = next_value(i);
      } else if (arg == "--log-level") {
        const std::string v = next_value(i);
        const auto level = obs::log::parse_level(v);
        if (!level.has_value()) {
          usage(str_cat("unknown log level '", v,
                        "' (trace|debug|info|warn|error|off)"));
        }
        opt.log_level = *level;
      } else if (arg == "--log-out") {
        opt.log_out = next_value(i);
      } else if (arg == "--slow-ms") {
        const std::int64_t ms = parse_int(next_value(i));
        if (ms < 0) usage("--slow-ms must be >= 0");
        opt.slow_ms = static_cast<int>(ms);
      } else if (arg == "--distance-engine") {
        const std::string v = next_value(i);
        if (v == "dijkstra") opt.engine = DistanceEngine::kDijkstra;
        else if (v == "alt") opt.engine = DistanceEngine::kAlt;
        else if (v == "ch") opt.engine = DistanceEngine::kCh;
        else if (v == "ch-table") opt.engine = DistanceEngine::kChTable;
        else usage(str_cat("unknown distance engine '", v, "' (dijkstra|alt|ch|ch-table)"));
      } else {
        usage(str_cat("unknown argument '", arg, "'"));
      }
    } catch (const ParseError& e) {
      usage(e.what());
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const SimOptions opt = parse_args(argc, argv);
  obs::log::Logger& logger = obs::log::Logger::global();
  logger.set_default_level(opt.log_level);
  if (!opt.log_out.empty() && !logger.set_output_file(opt.log_out)) {
    std::cerr << "error: cannot open '" << opt.log_out << "' for logging\n";
    return 1;
  }
  obs::Tracer::global().set_enabled(true);

  // The shared map every tier works against.
  roadnet::CityParams params;
  params.rows = 26;
  params.cols = 26;
  params.spacing_m = 135.0;
  params.seed = 2;
  const roadnet::RoadNetwork net = roadnet::make_city(params);
  std::cout << "map: " << net.segment_count() << " segments\n";

  // --- the serving stack: snapshot store + metrics + ingest + query engine.
  // The serve metrics share the global registry with the pipeline's own
  // neat_core_* metrics, so one /metrics scrape sees the whole process.
  Config cfg;
  cfg.refine.epsilon = 2000.0;
  cfg.refine.distance_engine = opt.engine;
  cfg.phase1_threads = 2;
  serve::SnapshotStore store;
  serve::Metrics metrics(&obs::Registry::global());
  serve::IngestOptions iopts;
  iopts.queue_capacity = 4;
  serve::IngestService ingest(net, cfg, store, metrics, iopts);
  const serve::QueryEngine engine(net, store, &metrics);

  // --- the live observability plane: resource sampler + HTTP admin server.
  obs::ResourceSamplerOptions sopts;
  sopts.period = std::chrono::milliseconds(opt.sample_period_ms);
  obs::ResourceSampler sampler(obs::Registry::global(), sopts);
  std::unique_ptr<obs::HttpExporter> admin;
  if (opt.admin_port >= 0) {
    obs::HttpExporterOptions hopts;
    hopts.port = static_cast<std::uint16_t>(opt.admin_port);
    hopts.ready = [&metrics] { return metrics.snapshot_version() > 0; };
    hopts.status_fields = [&metrics, &ingest] {
      return str_cat("\"snapshot_version\":", metrics.snapshot_version(),
                     ",\"snapshot_age_s\":", format_fixed(metrics.snapshot_age_seconds(), 3),
                     ",\"ingest_queue_depth\":", ingest.queue_depth());
    };
    try {
      admin = std::make_unique<obs::HttpExporter>(obs::Registry::global(), hopts,
                                                  &obs::Tracer::global());
    } catch (const Error& e) {
      NEAT_LOG(kError, "sim").msg("admin server failed to start").kv("reason", e.what());
      logger.flush();
      return 1;
    }
    // The machine-readable line smoke tests grep for the bound port.
    std::cout << "admin: listening on http://127.0.0.1:" << admin->port()
              << " (/metrics /healthz /readyz /statusz /tracez /logz)\n";
  }

  // --- the public query plane: the same QueryEngine the in-process tier-3
  // clients use, exposed as JSON /v1/* endpoints, plus route planning over
  // the road network (CH-backed when the ingest path runs on CH too).
  // Declaration order matters: the server holds threads calling into the
  // service and planner, so it is declared last and torn down first.
  std::unique_ptr<sim::TripPlanner> planner;
  std::unique_ptr<net::QueryService> query_service;
  std::unique_ptr<net::HttpServer> query_server;
  if (opt.query_port >= 0) {
    std::shared_ptr<const roadnet::ChEngine> ch;
    if (opt.engine == DistanceEngine::kCh) {
      roadnet::ChOptions copts;
      copts.directed = true;
      copts.metric = roadnet::Metric::kDistance;
      ch = std::make_shared<const roadnet::ChEngine>(net, copts);
    }
    planner = std::make_unique<sim::TripPlanner>(net, roadnet::Metric::kDistance,
                                                 std::move(ch));
    net::QueryServiceOptions sopts_q;
    sopts_q.slow_request_seconds = static_cast<double>(opt.slow_ms) / 1e3;
    query_service = std::make_unique<net::QueryService>(
        net, engine, planner.get(), obs::Registry::global(), sopts_q);
    net::HttpServerOptions qopts;
    qopts.port = static_cast<std::uint16_t>(opt.query_port);
    qopts.registry = &obs::Registry::global();
    query_server = std::make_unique<net::HttpServer>(qopts);
    query_service->register_routes(*query_server);
    try {
      query_server->start();
    } catch (const Error& e) {
      NEAT_LOG(kError, "sim").msg("query server failed to start").kv("reason", e.what());
      logger.flush();
      return 1;
    }
    // The machine-readable line smoke tests grep for the bound port.
    std::cout << "query: listening on http://127.0.0.1:" << query_server->port()
              << " (/v1/nearest /v1/segment /v1/topk /v1/route)\n";
  }

  // --- tier 1: clients record trips and upload them in batches. Each batch
  // is clustered incrementally by the background worker; a new snapshot
  // version appears after each one without ever blocking queries. Every
  // upload travels under a fresh trace_id.
  const bool profiling =
      !opt.profile_out.empty() && obs::prof::Profiler::global().start();
  if (!opt.profile_out.empty() && !profiling) {
    NEAT_LOG(kWarn, "sim").msg("profiler busy, running without --profile-out");
  }
  sim::SimConfig sim_cfg = sim::default_config(net, 2, 3);
  sim_cfg.use_ch_routing = opt.engine == DistanceEngine::kCh;
  const sim::MobilitySimulator simulator(net, sim_cfg);
  constexpr std::size_t kBatches = 3;
  constexpr std::size_t kTripsPerBatch = 100;
  std::int64_t next_id = 0;
  std::uint64_t last_upload_trace = 0;
  for (std::size_t b = 0; b < kBatches; ++b) {
    const traj::TrajectoryDataset raw =
        simulator.generate(kTripsPerBatch, 77 + static_cast<std::uint64_t>(b));
    traj::TrajectoryDataset batch;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      batch.add(traj::Trajectory(TrajectoryId(next_id++), raw[i].points()));
    }
    ingest.submit(std::move(batch), 0, &last_upload_trace);
    std::cout << "client upload: batch " << b + 1 << " (" << kTripsPerBatch
              << " trips) queued, trace_id=" << last_upload_trace << '\n';
  }
  ingest.flush();
  const auto snap = engine.snapshot();
  std::cout << "server: snapshot v" << snap->version() << " live — "
            << snap->flows().size() << " flows, " << snap->final_clusters().size()
            << " clusters\n";

  // --- tier 3: client queries against the live snapshot. The first query
  // reuses the last upload's trace_id: its ingest span and query span now
  // carry the same correlation id, the end-to-end story /tracez tells.
  const roadnet::Bounds bb = net.bounding_box();
  const Point client{(bb.min.x + bb.max.x) / 2, (bb.min.y + bb.max.y) / 2};
  if (const auto hit = engine.nearest_flow(client, 1500.0, last_upload_trace)) {
    std::cout << "client at city center [trace_id=" << hit->trace_id
              << "]: nearest flow #" << hit->flow << " (" << hit->cardinality
              << " trips) passes " << hit->distance_m << " m away on segment "
              << hit->segment << '\n';
    const serve::SegmentFlows on_seg = engine.flows_on_segment(hit->segment);
    std::cout << "that road carries " << on_seg.flows.size()
              << " flow(s) [trace_id=" << on_seg.trace_id << "]\n";
  } else {
    std::cout << "client at city center: no flow within 1500 m\n";
  }
  const serve::TopFlows top = engine.top_k_flows(5);
  std::cout << "busiest corridors (top " << top.flows.size()
            << ", trace_id=" << top.trace_id << "):\n";
  for (const serve::RankedFlow& f : top.flows) {
    std::cout << "  flow #" << f.flow << ": " << f.cardinality << " trips over "
              << f.route_length_m << " m (cluster " << f.final_cluster << ")\n";
  }

  if (profiling) {
    const obs::prof::Profile profile = obs::prof::Profiler::global().stop();
    std::ofstream out(opt.profile_out);
    if (!out) {
      NEAT_LOG(kError, "sim")
          .msg("cannot open profile output file")
          .kv("path", opt.profile_out);
      logger.flush();
      return 1;
    }
    out << profile.to_folded();
    std::cout << "profile written to " << opt.profile_out << " ("
              << profile.samples << " samples, "
              << format_fixed(100.0 * profile.symbolized_fraction(), 1)
              << "% symbolized; render: python3 tools/fold2svg.py "
              << opt.profile_out << " profile.svg)\n";
  }

  // --- operations: the legacy in-process JSON scrape still works; the live
  // endpoints (when --admin-port is set) serve the same registry over HTTP.
  std::cout << "metrics: " << metrics.to_json() << '\n';

  // --- durability: persist the served snapshot and a GeoJSON payload any
  // map client could render.
  std::filesystem::create_directories("server_out");
  const ClusteringSnapshot persisted{snap->flows(), snap->final_clusters()};
  save_snapshot(persisted, "server_out/snapshot.csv");
  const std::string geojson =
      eval::flows_to_geojson(net, snap->flows(), &snap->final_clusters());
  std::ofstream("server_out/flows.geojson") << geojson;
  std::cout << "server_out/snapshot.csv and flows.geojson written ("
            << geojson.size() << " bytes of GeoJSON)\n";

  if ((admin != nullptr || query_server != nullptr) && opt.linger_s > 0) {
    std::cout << "lingering " << opt.linger_s << "s for scrapes...\n" << std::flush;
    std::this_thread::sleep_for(std::chrono::seconds(opt.linger_s));
  }
  return 0;
}
