// Simulation of the paper's 3-tier NEAT system architecture (§II-C):
// "Each client node acts as a mobile device which records its locations,
// sends its trajectories to a NEAT server and makes requests to the server
// to get trajectory clustering results ... NEAT server also distributes
// trajectory datasets across multiple nodes in a cluster. These data nodes
// can perform some data preprocessing tasks."
//
// This example runs the whole loop in-process:
//   clients  -> upload trips to data nodes (TrajectoryStore per node)
//   data nodes -> Phase 1 preprocessing on their shard
//   coordinator -> merges base clusters, runs Phases 2-3
//   server   -> persists the servable snapshot, answers a client query
//
//   $ ./neat_server_sim
#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/distributed.h"
#include "core/result_io.h"
#include "eval/geojson.h"
#include "roadnet/generators.h"
#include "sim/mobility_simulator.h"
#include "store/trajectory_store.h"

using namespace neat;

int main() {
  // The shared map every tier works against.
  roadnet::CityParams params;
  params.rows = 26;
  params.cols = 26;
  params.spacing_m = 135.0;
  params.seed = 2;
  const roadnet::RoadNetwork net = roadnet::make_city(params);
  std::cout << "map: " << net.segment_count() << " segments\n";

  // --- tier 1: clients record trips and upload round-robin to data nodes.
  const sim::SimConfig sim_cfg = sim::default_config(net, 2, 3);
  const sim::MobilitySimulator simulator(net, sim_cfg);
  const traj::TrajectoryDataset uploads = simulator.generate(300, 77);

  constexpr std::size_t kDataNodes = 3;
  std::vector<store::TrajectoryStore> nodes(kDataNodes, store::TrajectoryStore(net));
  for (std::size_t i = 0; i < uploads.size(); ++i) {
    nodes[i % kDataNodes].insert(uploads[i]);
  }
  for (std::size_t n = 0; n < kDataNodes; ++n) {
    const store::StoreStats st = nodes[n].stats();
    std::cout << "data node " << n << ": " << st.num_trajectories << " trips, "
              << st.num_points << " points, " << st.num_traversals
              << " indexed traversals\n";
  }

  // --- tier 2: each data node preprocesses its shard (Phase 1);
  //             the coordinator merges and finishes Phases 2-3.
  std::vector<traj::TrajectoryDataset> shards;
  shards.reserve(kDataNodes);
  for (const auto& node : nodes) shards.push_back(node.snapshot());
  std::vector<const traj::TrajectoryDataset*> shard_ptrs;
  for (const auto& s : shards) shard_ptrs.push_back(&s);

  Config cfg;
  cfg.refine.epsilon = 2000.0;
  cfg.phase1_threads = 2;  // each data node parallelizes its own shard
  const Result result = run_sharded(net, shard_ptrs, cfg);
  std::cout << "coordinator: " << result.base_clusters.size() << " base clusters -> "
            << result.flow_clusters.size() << " flows -> " << result.final_clusters.size()
            << " clusters (" << result.timing.total_s() * 1000 << " ms)\n";

  // --- tier 3: the server persists the servable snapshot and answers a
  //             client request ("clusters near me, please").
  std::filesystem::create_directories("server_out");
  const ClusteringSnapshot snapshot{result.flow_clusters, result.final_clusters};
  save_snapshot(snapshot, "server_out/snapshot.csv");
  const ClusteringSnapshot served = load_snapshot("server_out/snapshot.csv");
  std::cout << "server: snapshot persisted and reloaded (" << served.flows.size()
            << " flows)\n";

  // Client query: flows passing within 400 m of the client's position.
  const roadnet::Bounds bb = net.bounding_box();
  const Point client{(bb.min.x + bb.max.x) / 2, (bb.min.y + bb.max.y) / 2};
  std::size_t nearby = 0;
  for (const FlowCluster& f : served.flows) {
    for (const NodeId j : f.junctions) {
      if (distance(net.node(j).pos, client) <= 400.0) {
        ++nearby;
        break;
      }
    }
  }
  std::cout << "client at city center: " << nearby << "/" << served.flows.size()
            << " major flows within 400 m\n";

  // And a GeoJSON payload any map client could render.
  const std::string geojson =
      eval::flows_to_geojson(net, served.flows, &served.final_clusters);
  std::ofstream("server_out/flows.geojson") << geojson;
  std::cout << "server_out/flows.geojson written (" << geojson.size() << " bytes)\n";
  return 0;
}
