// Renders the clustering pipeline to SVG — a visual walk through the three
// NEAT phases on a generated city (the paper's Figure 3, on demand).
//
//   $ ./render_city [out_dir]
//
// Produces: <out>/city_input.svg (network + trajectories),
//           <out>/city_flows.svg (flow clusters, one color each),
//           <out>/city_clusters.svg (flows colored by final cluster).
#include <filesystem>
#include <iostream>
#include <string>

#include "core/clusterer.h"
#include "eval/svg.h"
#include "roadnet/generators.h"
#include "sim/mobility_simulator.h"

using namespace neat;

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "render_out";
  std::filesystem::create_directories(out_dir);

  roadnet::CityParams params;
  params.rows = 30;
  params.cols = 30;
  params.spacing_m = 130.0;
  params.seed = 88;
  const roadnet::RoadNetwork net = roadnet::make_city(params);
  const sim::SimConfig sim_cfg = sim::default_config(net, 2, 3);
  const traj::TrajectoryDataset data = sim::MobilitySimulator(net, sim_cfg).generate(250, 9);

  Config cfg;
  cfg.refine.epsilon = 2500.0;
  const Result res = NeatClusterer(net, cfg).run(data);
  std::cout << data.size() << " trajectories -> " << res.flow_clusters.size()
            << " flows -> " << res.final_clusters.size() << " clusters\n";

  const auto flow_polyline = [&](const FlowCluster& f) {
    std::vector<Point> pts;
    for (const NodeId j : f.junctions) pts.push_back(net.node(j).pos);
    return pts;
  };
  const auto mark_endpoints = [&](eval::SvgWriter& svg) {
    for (const NodeId h : sim_cfg.hotspots) svg.add_circle(net.node(h).pos, 6.0, "#000000");
    for (const NodeId d : sim_cfg.destinations) {
      svg.add_circle(net.node(d).pos, 6.0, "#d62728");
    }
  };

  {
    eval::SvgWriter svg(net.bounding_box(), 1200.0);
    svg.add_network(net);
    for (const traj::Trajectory& tr : data) {
      std::vector<Point> pts;
      for (const traj::Location& loc : tr.points()) pts.push_back(loc.pos);
      svg.add_polyline(pts, "#2ca02c", 0.8, 0.35);
    }
    mark_endpoints(svg);
    svg.write(out_dir + "/city_input.svg");
  }
  {
    eval::SvgWriter svg(net.bounding_box(), 1200.0);
    svg.add_network(net);
    for (std::size_t f = 0; f < res.flow_clusters.size(); ++f) {
      svg.add_polyline(flow_polyline(res.flow_clusters[f]),
                       eval::SvgWriter::qualitative_color(f), 2.5, 0.9);
    }
    mark_endpoints(svg);
    svg.write(out_dir + "/city_flows.svg");
  }
  {
    eval::SvgWriter svg(net.bounding_box(), 1200.0);
    svg.add_network(net);
    for (std::size_t c = 0; c < res.final_clusters.size(); ++c) {
      for (const std::size_t f : res.final_clusters[c].flows) {
        svg.add_polyline(flow_polyline(res.flow_clusters[f]),
                         eval::SvgWriter::qualitative_color(c), 2.5, 0.9);
      }
    }
    mark_endpoints(svg);
    svg.write(out_dir + "/city_clusters.svg");
  }
  std::cout << "SVGs written under " << out_dir << "/\n";
  return 0;
}
