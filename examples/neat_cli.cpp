// neat_cli — command-line front end for the NEAT library.
//
// Clusters a trajectory dataset over a road network, both given as CSV files
// (the formats of roadnet::save_network / traj::save_dataset), and writes
// the discovered clusters back as CSV.
//
//   $ ./neat_cli --network net.csv --trajectories trips.csv
//                [--columnar] [--mode base|flow|opt] [--epsilon M] [--min-card N|auto]
//                [--wq X --wk Y --wv Z] [--beta B] [--no-elb]
//                [--landmarks N] [--distance-engine dijkstra|alt|ch|ch-table]
//                [--threads N] [--refine-threads N]
//                [--metrics-out metrics.prom] [--trace-out trace.json]
//                [--profile-out profile.folded]
//                [--admin-port PORT] [--out prefix]
//                [--log-level LEVEL] [--log-out FILE]
//
// --distance-engine picks the Phase 3 shortest-distance backend: plain
// Dijkstra, ALT (landmark A*, implies --landmarks), or a contraction
// hierarchy with memoized upward labels (fastest; exact in all cases).
//
// --columnar treats --trajectories as a binary columnar file (written by
// neat_convert or sim::generate_columnar_stream) and runs Phase 1
// out-of-core: the file is memory-mapped and scanned in bounded-memory
// batches, so datasets larger than RAM cluster fine. Results are
// bit-identical to the CSV path on the same data.
//
// --metrics-out dumps the run's metric registry as Prometheus text
// exposition; --trace-out enables the pipeline tracer and writes a Chrome
// trace_event JSON loadable in chrome://tracing or https://ui.perfetto.dev
// (nested spans for Phases 1-3 including one span per parallel-refiner
// worker). --admin-port serves the same registry and tracer live on
// 127.0.0.1:PORT (/metrics, /healthz, /readyz, /statusz, /tracez) for the
// duration of the run — handy for watching a long clustering job from curl
// or a Prometheus scraper; 0 picks a free port (printed on startup).
//
// --profile-out runs the sampling CPU profiler (src/obs/prof/) across the
// clustering run and writes the collapsed-stack profile; render it with
//   $ python3 tools/fold2svg.py profile.folded profile.svg
//
// Try it end to end (generates its own demo inputs when given --demo):
//   $ ./neat_cli --demo
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/string_util.h"
#include "core/clusterer.h"
#include "eval/report.h"
#include "obs/http_exporter.h"
#include "obs/log/log.h"
#include "obs/prof/profiler.h"
#include "obs/registry.h"
#include "obs/resource_sampler.h"
#include "obs/trace.h"
#include "roadnet/generators.h"
#include "roadnet/io.h"
#include "sim/mobility_simulator.h"
#include "store/columnar_store.h"
#include "traj/io.h"

using namespace neat;

namespace {

struct CliOptions {
  std::string network_path;
  std::string trajectories_path;
  std::string out_prefix{"neat_out"};
  std::string metrics_out;  ///< Prometheus text exposition file ("" = off).
  std::string trace_out;    ///< Chrome trace JSON file ("" = tracing off).
  std::string profile_out;  ///< Folded CPU profile file ("" = profiler off).
  std::string log_out;      ///< JSON log lines file ("" = stderr).
  int admin_port{-1};       ///< -1 = no admin server; 0 = ephemeral port.
  obs::log::Level log_level{obs::log::Level::kInfo};
  Config config;
  bool columnar{false};  ///< --trajectories is a columnar file, run out-of-core.
  bool demo{false};
};

[[noreturn]] void usage(const std::string& error) {
  std::cerr << "error: " << error << "\n\n"
            << "usage: neat_cli --network NET.csv --trajectories TRIPS.csv\n"
            << "                [--columnar] [--mode base|flow|opt] [--epsilon METRES]\n"
            << "                [--min-card N|auto] [--wq X --wk Y --wv Z]\n"
            << "                [--beta B|inf] [--no-elb] [--landmarks N]\n"
            << "                [--distance-engine dijkstra|alt|ch|ch-table]\n"
            << "                [--threads N] [--refine-threads N] [--out PREFIX]\n"
            << "                [--metrics-out FILE] [--trace-out FILE]\n"
            << "                [--profile-out FILE] [--admin-port PORT]\n"
            << "                [--log-level trace|debug|info|warn|error|off]\n"
            << "                [--log-out FILE]\n"
            << "       neat_cli --demo   (self-contained demonstration)\n";
  std::exit(2);
}

CliOptions parse_args(int argc, char** argv) {
  CliOptions opt;
  const auto next_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(str_cat("missing value after ", argv[i]));
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg == "--network") {
        opt.network_path = next_value(i);
      } else if (arg == "--trajectories") {
        opt.trajectories_path = next_value(i);
      } else if (arg == "--out") {
        opt.out_prefix = next_value(i);
      } else if (arg == "--mode") {
        const std::string mode = next_value(i);
        if (mode == "base") opt.config.mode = Mode::kBase;
        else if (mode == "flow") opt.config.mode = Mode::kFlow;
        else if (mode == "opt") opt.config.mode = Mode::kOpt;
        else usage(str_cat("unknown mode '", mode, "'"));
      } else if (arg == "--epsilon") {
        opt.config.refine.epsilon = parse_double(next_value(i));
      } else if (arg == "--min-card") {
        const std::string v = next_value(i);
        opt.config.flow.min_card = (v == "auto") ? -1.0 : parse_double(v);
      } else if (arg == "--wq") {
        opt.config.flow.wq = parse_double(next_value(i));
      } else if (arg == "--wk") {
        opt.config.flow.wk = parse_double(next_value(i));
      } else if (arg == "--wv") {
        opt.config.flow.wv = parse_double(next_value(i));
      } else if (arg == "--beta") {
        const std::string v = next_value(i);
        opt.config.flow.beta =
            (v == "inf") ? std::numeric_limits<double>::infinity() : parse_double(v);
      } else if (arg == "--threads") {
        const std::int64_t n = parse_int(next_value(i));
        if (n < 0) usage("--threads must be >= 0 (0/1 = serial)");
        opt.config.phase1_threads = static_cast<unsigned>(n);
      } else if (arg == "--refine-threads") {
        const std::int64_t n = parse_int(next_value(i));
        if (n < 0) usage("--refine-threads must be >= 0 (0/1 = serial)");
        opt.config.refine.threads = static_cast<unsigned>(n);
      } else if (arg == "--landmarks") {
        const std::int64_t n = parse_int(next_value(i));
        if (n < 1) usage("--landmarks must be >= 1");
        opt.config.refine.use_landmarks = true;
        opt.config.refine.num_landmarks = static_cast<int>(n);
      } else if (arg == "--distance-engine") {
        const std::string v = next_value(i);
        if (v == "dijkstra") opt.config.refine.distance_engine = DistanceEngine::kDijkstra;
        else if (v == "alt") opt.config.refine.distance_engine = DistanceEngine::kAlt;
        else if (v == "ch") opt.config.refine.distance_engine = DistanceEngine::kCh;
        else if (v == "ch-table") opt.config.refine.distance_engine = DistanceEngine::kChTable;
        else usage(str_cat("unknown distance engine '", v, "' (dijkstra|alt|ch|ch-table)"));
      } else if (arg == "--metrics-out") {
        opt.metrics_out = next_value(i);
      } else if (arg == "--trace-out") {
        opt.trace_out = next_value(i);
      } else if (arg == "--profile-out") {
        opt.profile_out = next_value(i);
      } else if (arg == "--admin-port") {
        const std::int64_t p = parse_int(next_value(i));
        if (p < 0 || p > 65535) usage("--admin-port must be in [0, 65535]");
        opt.admin_port = static_cast<int>(p);
      } else if (arg == "--log-level") {
        const std::string v = next_value(i);
        const auto level = obs::log::parse_level(v);
        if (!level.has_value()) {
          usage(str_cat("unknown log level '", v,
                        "' (trace|debug|info|warn|error|off)"));
        }
        opt.log_level = *level;
      } else if (arg == "--log-out") {
        opt.log_out = next_value(i);
      } else if (arg == "--no-elb") {
        opt.config.refine.use_elb = false;
      } else if (arg == "--columnar") {
        opt.columnar = true;
      } else if (arg == "--demo") {
        opt.demo = true;
      } else {
        usage(str_cat("unknown argument '", arg, "'"));
      }
    } catch (const ParseError& e) {
      usage(e.what());
    }
  }
  if (!opt.demo && (opt.network_path.empty() || opt.trajectories_path.empty())) {
    usage("--network and --trajectories are required (or pass --demo)");
  }
  return opt;
}

void write_flows_csv(const roadnet::RoadNetwork& net, const Result& res,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error(str_cat("cannot open '", path, "' for writing"));
  out << "flow,final_cluster,cardinality,route_length_m,seq,segment,junction,x,y\n";
  std::vector<int> final_of(res.flow_clusters.size(), -1);
  for (std::size_t c = 0; c < res.final_clusters.size(); ++c) {
    for (const std::size_t f : res.final_clusters[c].flows) final_of[f] = static_cast<int>(c);
  }
  for (std::size_t f = 0; f < res.flow_clusters.size(); ++f) {
    const FlowCluster& flow = res.flow_clusters[f];
    for (std::size_t j = 0; j < flow.junctions.size(); ++j) {
      const Point p = net.node(flow.junctions[j]).pos;
      out << f << ',' << final_of[f] << ',' << flow.cardinality() << ','
          << format_fixed(flow.route_length, 1) << ',' << j << ','
          << (j < flow.route.size() ? std::to_string(flow.route[j].value()) : "-") << ','
          << flow.junctions[j].value() << ',' << format_fixed(p.x, 2) << ','
          << format_fixed(p.y, 2) << '\n';
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    CliOptions opt = parse_args(argc, argv);
    obs::log::Logger& logger = obs::log::Logger::global();
    logger.set_default_level(opt.log_level);
    if (!opt.log_out.empty() && !logger.set_output_file(opt.log_out)) {
      std::cerr << "error: cannot open '" << opt.log_out << "' for logging\n";
      return 1;
    }
    if (!opt.trace_out.empty() || opt.admin_port >= 0) {
      obs::Tracer::global().set_enabled(true);
    }
    std::unique_ptr<obs::HttpExporter> admin;
    if (opt.admin_port >= 0) {
      obs::HttpExporterOptions hopts;
      hopts.port = static_cast<std::uint16_t>(opt.admin_port);
      admin = std::make_unique<obs::HttpExporter>(obs::Registry::global(), hopts,
                                                  &obs::Tracer::global());
      std::cout << "admin: listening on http://127.0.0.1:" << admin->port()
                << " (/metrics /healthz /readyz /statusz /tracez /logz)\n";
    }

    if (opt.demo) {
      // Self-contained demonstration: generate inputs, write them next to
      // the outputs, then proceed exactly as if the user had supplied them.
      std::cout << "demo mode: generating a city and 200 trips\n";
      roadnet::CityParams params;
      params.rows = 20;
      params.cols = 20;
      params.seed = 5;
      const roadnet::RoadNetwork demo_net = roadnet::make_city(params);
      roadnet::save_network(demo_net, opt.out_prefix + "_network.csv");
      const sim::SimConfig scfg = sim::default_config(demo_net, 2, 3);
      const traj::TrajectoryDataset demo_data =
          sim::MobilitySimulator(demo_net, scfg).generate(200, 1);
      traj::save_dataset(demo_data, opt.out_prefix + "_trajectories.csv");
      opt.network_path = opt.out_prefix + "_network.csv";
      opt.trajectories_path = opt.out_prefix + "_trajectories.csv";
    }

    const roadnet::RoadNetwork net = roadnet::load_network(opt.network_path);
    std::unique_ptr<store::ColumnarTrajectoryStore> cstore;
    traj::TrajectoryDataset data;
    std::size_t n_trajectories = 0;
    if (opt.columnar) {
      cstore = std::make_unique<store::ColumnarTrajectoryStore>(opt.trajectories_path);
      n_trajectories = cstore->size();
      std::cout << "loaded " << net.segment_count() << " segments; mapped "
                << n_trajectories << " trajectories (" << cstore->num_points()
                << " points, " << cstore->bytes_mapped() << " bytes, out-of-core)\n";
    } else {
      data = traj::load_dataset(opt.trajectories_path);
      n_trajectories = data.size();
      std::cout << "loaded " << net.segment_count() << " segments, " << data.size()
                << " trajectories (" << data.total_points() << " points)\n";
    }

    // Out-of-core runs sample /proc/self so the metrics dump carries the
    // demand-paging cost of the mapped store (neat_store_page_faults_total)
    // alongside the neat_store_bytes_mapped gauge the store itself owns.
    std::unique_ptr<obs::ResourceSampler> sampler;
    if (opt.columnar) {
      sampler = std::make_unique<obs::ResourceSampler>(obs::Registry::global());
    }

    const bool profiling =
        !opt.profile_out.empty() && obs::prof::Profiler::global().start();
    if (!opt.profile_out.empty() && !profiling) {
      NEAT_LOG(kWarn, "cli").msg("profiler busy, running without --profile-out");
    }
    const NeatClusterer clusterer(net, opt.config);
    Result res;
    if (opt.columnar) {
      store::ColumnarTrajectorySource source(*cstore);
      res = clusterer.run(source);
    } else {
      res = clusterer.run(data);
    }
    if (profiling) {
      const obs::prof::Profile profile = obs::prof::Profiler::global().stop();
      std::ofstream out(opt.profile_out);
      if (!out) throw Error(str_cat("cannot open '", opt.profile_out, "' for writing"));
      out << profile.to_folded();
      std::cout << "profile written to " << opt.profile_out << " ("
                << profile.samples << " samples, "
                << format_fixed(100.0 * profile.symbolized_fraction(), 1)
                << "% symbolized; render: python3 tools/fold2svg.py "
                << opt.profile_out << " profile.svg)\n";
    }
    eval::write_report(std::cout, net, res, n_trajectories);

    if (opt.config.mode != Mode::kBase) {
      const std::string flows_path = opt.out_prefix + "_flows.csv";
      write_flows_csv(net, res, flows_path);
      std::cout << "flow clusters written to " << flows_path << '\n';
    }

    if (sampler) sampler->sample_now();  // final fault/RSS deltas
    if (!opt.metrics_out.empty()) {
      std::ofstream out(opt.metrics_out);
      if (!out) throw Error(str_cat("cannot open '", opt.metrics_out, "' for writing"));
      out << obs::Registry::global().to_prometheus();
      std::cout << "metrics written to " << opt.metrics_out << '\n';
    }
    if (!opt.trace_out.empty()) {
      std::ofstream out(opt.trace_out);
      if (!out) throw Error(str_cat("cannot open '", opt.trace_out, "' for writing"));
      out << obs::Tracer::global().to_chrome_json();
      std::cout << "trace written to " << opt.trace_out
                << " (load in chrome://tracing or ui.perfetto.dev)\n";
    }
    return 0;
  } catch (const Error& e) {
    NEAT_LOG(kError, "cli").msg("run failed").kv("reason", e.what());
    obs::log::Logger::global().flush();
    return 1;
  }
}
