// Public transit planning (the paper's first motivating scenario, §I):
// find the road-network routes with dense AND continuous traffic, then
// propose bus lines along the top flow clusters.
//
// The pipeline: generate a synthetic city, simulate commuter trips from
// residential hotspots to employment centers, run flow-NEAT, rank the flow
// clusters by (trajectory cardinality x route length) — a proxy for
// passenger-kilometres a bus line along that route could serve.
//
//   $ ./transit_planning [num_commuters]
#include <algorithm>
#include <iostream>
#include <string>

#include "core/clusterer.h"
#include "eval/metrics.h"
#include "eval/od_matrix.h"
#include "roadnet/generators.h"
#include "sim/mobility_simulator.h"

using namespace neat;

int main(int argc, char** argv) {
  const std::size_t commuters = argc > 1 ? std::stoul(argv[1]) : 300;

  // A mid-sized city: ~30x30 blocks with an arterial grid.
  roadnet::CityParams params;
  params.rows = 30;
  params.cols = 30;
  params.spacing_m = 140.0;
  params.seed = 7;
  const roadnet::RoadNetwork net = roadnet::make_city(params);
  const roadnet::NetworkStats st = net.stats();
  std::cout << "city: " << st.num_junctions << " junctions, " << st.num_segments
            << " segments, " << st.total_length_km << " km of road\n";

  // Morning commute: three residential hotspots, two employment centers.
  const sim::SimConfig sim_cfg = sim::default_config(net, 3, 2);
  const sim::MobilitySimulator simulator(net, sim_cfg);
  const traj::TrajectoryDataset data = simulator.generate(commuters, 2026);
  std::cout << "simulated " << data.size() << " commuter trips ("
            << data.total_points() << " location samples)\n\n";

  // Flow-NEAT with traffic-monitoring weights: flow and density matter,
  // speed does not (paper §III-B.2 discussion of weight presets).
  Config config;
  config.mode = Mode::kFlow;
  config.flow.wq = 0.5;
  config.flow.wk = 0.5;
  config.flow.wv = 0.0;
  const Result result = NeatClusterer(net, config).run(data);
  std::cout << "flow-NEAT: " << result.flow_clusters.size() << " candidate corridors ("
            << result.filtered_flows.size() << " minor flows filtered, minCard "
            << result.effective_min_card << ")\n";
  std::cout << "coverage: "
            << 100.0 * eval::trajectory_coverage(result, data.size())
            << "% of commuters ride at least one corridor\n\n";

  // Rank corridors by expected service value.
  std::vector<std::size_t> order(result.flow_clusters.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const FlowCluster& fa = result.flow_clusters[a];
    const FlowCluster& fb = result.flow_clusters[b];
    return fa.cardinality() * fa.route_length > fb.cardinality() * fb.route_length;
  });

  std::cout << "proposed bus lines (top " << std::min<std::size_t>(5, order.size())
            << " corridors):\n";
  for (std::size_t rank = 0; rank < std::min<std::size_t>(5, order.size()); ++rank) {
    const FlowCluster& f = result.flow_clusters[order[rank]];
    const Point start = net.node(f.start_junction()).pos;
    const Point end = net.node(f.end_junction()).pos;
    std::cout << "  line " << rank + 1 << ": " << f.route.size() << " segments, "
              << f.route_length / 1000.0 << " km, serves " << f.cardinality()
              << " commuters/day\n"
              << "    terminals: (" << start.x << ", " << start.y << ") <-> (" << end.x
              << ", " << end.y << ")\n";
  }

  // Demand view: the origin-destination matrix between the residential and
  // employment zones, plus how much of the heaviest OD pair the top
  // corridor carries.
  std::vector<eval::Zone> zones;
  for (std::size_t i = 0; i < sim_cfg.hotspots.size(); ++i) {
    zones.push_back({"res" + std::to_string(i), net.node(sim_cfg.hotspots[i]).pos});
  }
  for (std::size_t i = 0; i < sim_cfg.destinations.size(); ++i) {
    zones.push_back({"job" + std::to_string(i), net.node(sim_cfg.destinations[i]).pos});
  }
  const eval::OdMatrix od(zones, data);
  std::cout << "\norigin-destination demand (trips/day):\n";
  std::size_t best_from = 0;
  std::size_t best_to = 0;
  for (std::size_t a = 0; a < od.zone_count(); ++a) {
    for (std::size_t b = 0; b < od.zone_count(); ++b) {
      if (od.trips(a, b) == 0) continue;
      std::cout << "  " << od.zone(a).name << " -> " << od.zone(b).name << ": "
                << od.trips(a, b) << '\n';
      if (od.trips(a, b) > od.trips(best_from, best_to)) {
        best_from = a;
        best_to = b;
      }
    }
  }
  if (!order.empty() && od.trips(best_from, best_to) > 0) {
    const double share = od.flow_share(best_from, best_to,
                                       result.flow_clusters[order[0]], data);
    std::cout << "line 1 carries " << 100.0 * share << "% of the heaviest OD pair ("
              << od.zone(best_from).name << " -> " << od.zone(best_to).name << ")\n";
  }
  return 0;
}
