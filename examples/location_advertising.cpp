// Location-based advertising (the paper's second motivating scenario, §I):
// a store wants to place offers on mobile devices travelling the major
// traffic flows that pass near it.
//
// The pipeline: simulate city traffic, run opt-NEAT, then for each of a few
// candidate store sites report which flow clusters pass within walking
// distance and how large the reachable audience is.
//
//   $ ./location_advertising
#include <algorithm>
#include <iostream>

#include "core/clusterer.h"
#include "core/netflow.h"
#include "roadnet/generators.h"
#include "sim/mobility_simulator.h"

using namespace neat;

namespace {

/// Distance from a point to the closest junction of a flow's representative
/// route — "does this flow pass by the store?".
double flow_pass_distance(const roadnet::RoadNetwork& net, const FlowCluster& flow,
                          Point store) {
  double best = std::numeric_limits<double>::infinity();
  for (const NodeId junction : flow.junctions) {
    best = std::min(best, distance(net.node(junction).pos, store));
  }
  return best;
}

}  // namespace

int main() {
  roadnet::CityParams params;
  params.rows = 28;
  params.cols = 28;
  params.spacing_m = 130.0;
  params.seed = 11;
  const roadnet::RoadNetwork net = roadnet::make_city(params);

  const sim::SimConfig sim_cfg = sim::default_config(net, 2, 3);
  const sim::MobilitySimulator simulator(net, sim_cfg);
  const traj::TrajectoryDataset data = simulator.generate(400, 555);
  std::cout << "simulated " << data.size() << " shopper trips\n";

  Config config;
  config.refine.epsilon = 1500.0;
  const Result result = NeatClusterer(net, config).run(data);
  std::cout << "opt-NEAT found " << result.flow_clusters.size() << " major flows in "
            << result.timing.total_s() * 1000 << " ms\n\n";

  // Candidate store sites: three spots spread over the city.
  const roadnet::Bounds bb = net.bounding_box();
  const auto site = [&](double fx, double fy) {
    return Point{bb.min.x + fx * (bb.max.x - bb.min.x),
                 bb.min.y + fy * (bb.max.y - bb.min.y)};
  };
  const std::vector<Point> candidates{site(0.5, 0.5), site(0.2, 0.6), site(0.85, 0.15)};
  const double walking_distance = 250.0;  // metres

  std::cout << "audience analysis (flows passing within " << walking_distance << " m):\n";
  for (std::size_t s = 0; s < candidates.size(); ++s) {
    const Point store = candidates[s];
    std::vector<TrajectoryId> audience;
    std::size_t flows_passing = 0;
    for (const FlowCluster& f : result.flow_clusters) {
      if (flow_pass_distance(net, f, store) <= walking_distance) {
        ++flows_passing;
        audience = merge_participants(audience, f.participants);
      }
    }
    std::cout << "  site " << s + 1 << " at (" << store.x << ", " << store.y << "): "
              << flows_passing << " flows pass by, reaching " << audience.size() << "/"
              << data.size() << " travellers\n";
  }

  // The best site is the one reached by the most travellers — report it.
  std::cout << "\nrecommendation: advertise along the corridor of the largest flow —\n";
  const auto biggest = std::max_element(
      result.flow_clusters.begin(), result.flow_clusters.end(),
      [](const FlowCluster& a, const FlowCluster& b) {
        return a.cardinality() < b.cardinality();
      });
  if (biggest != result.flow_clusters.end()) {
    std::cout << "  " << biggest->route.size() << " segments, "
              << biggest->route_length / 1000.0 << " km, " << biggest->cardinality()
              << " travellers/day\n";
  }
  return 0;
}
