// End-to-end pipeline from raw GPS to trajectory clusters: noisy position
// fixes are map matched onto the road network (the paper's SLAMM
// preprocessing step, §III-A.1) and the matched trajectories are clustered
// with opt-NEAT.
//
//   $ ./raw_gps_pipeline [noise_stddev_m]
#include <iostream>
#include <string>

#include "core/clusterer.h"
#include "mapmatch/look_ahead_matcher.h"
#include "roadnet/generators.h"
#include "roadnet/spatial_index.h"
#include "sim/mobility_simulator.h"

using namespace neat;

int main(int argc, char** argv) {
  const double noise = argc > 1 ? std::stod(argv[1]) : 10.0;

  roadnet::CityParams params;
  params.rows = 24;
  params.cols = 24;
  params.spacing_m = 140.0;
  params.seed = 17;
  const roadnet::RoadNetwork net = roadnet::make_city(params);
  const roadnet::SegmentGridIndex index(net);

  // "Field data": GPS traces with the requested noise level and no segment
  // annotations — what a fleet of phones would actually upload.
  const sim::SimConfig sim_cfg = sim::default_config(net, 2, 3);
  const sim::MobilitySimulator simulator(net, sim_cfg);
  const std::vector<traj::RawTrace> raw = simulator.generate_raw(250, 808, noise);
  std::size_t raw_points = 0;
  for (const auto& trace : raw) raw_points += trace.points.size();
  std::cout << "received " << raw.size() << " raw GPS traces (" << raw_points
            << " fixes, noise sigma " << noise << " m)\n";

  // Map matching: candidates from the spatial grid, full-trace look-ahead
  // resolves parallel-road ambiguity.
  mapmatch::MatchStats stats;
  const mapmatch::LookAheadMatcher matcher(net, index);
  const traj::TrajectoryDataset matched = matcher.match_all(raw, &stats);
  std::cout << "map matched " << stats.matched_points << " fixes, dropped "
            << stats.dropped_points << " (no road within "
            << mapmatch::MatchConfig{}.candidate_radius_m << " m)\n";

  // Cluster the matched trajectories.
  Config config;
  config.refine.epsilon = 1200.0;
  const Result result = NeatClusterer(net, config).run(matched);
  std::cout << "\nopt-NEAT results:\n"
            << "  " << result.num_fragments << " t-fragments ("
            << result.num_gap_repairs << " gap repairs)\n"
            << "  " << result.base_clusters.size() << " base clusters\n"
            << "  " << result.flow_clusters.size() << " flow clusters (minCard "
            << result.effective_min_card << ")\n"
            << "  " << result.final_clusters.size() << " final trajectory clusters\n"
            << "  ELB pruned " << result.elb_pruned_pairs
            << " flow pairs; computed " << result.sp_computations
            << " shortest paths\n"
            << "  total time " << result.timing.total_s() * 1000 << " ms\n";
  return 0;
}
