#!/usr/bin/env python3
"""Render a collapsed-stack ("folded") CPU profile as a flamegraph SVG.

Input is the format emitted by the sampling profiler (src/obs/prof/), one
line per unique stack, frames root-first separated by `;`, then a space and
the sample count:

    main;neat::NeatClusterer::run;neat::Refiner::refine 42

Lines starting with `#` and blank lines are ignored. The output SVG is
self-contained (no scripts, no external fonts): stacked rectangles, root
row at the bottom, width proportional to inclusive samples, deterministic
per-symbol colors, and a <title> tooltip per frame with the full name,
sample count and percentage. Open it in any browser.

  $ python3 tools/fold2svg.py profile.folded profile.svg

--check only validates the input format (every line is `frames... count`
with non-empty frames and a positive integer count) and prints a summary;
exit code 0 when valid and non-empty, 1 with a message on stderr otherwise.
CI uses it to gate /profilez output without caring about pixels:

  $ python3 tools/fold2svg.py --check profile.folded
"""
import hashlib
import html
import sys

# Layout constants (pixels).
WIDTH = 1200
FRAME_HEIGHT = 17
FONT_SIZE = 11
PAD = 10
MIN_TEXT_WIDTH = 30  # narrower rects get no label, tooltip only


def parse_folded(path):
    """Returns (stacks, errors): stacks as [(frames_list, count)]."""
    stacks = []
    errors = []
    with open(path, encoding="utf-8", errors="replace") as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line.strip() or line.lstrip().startswith("#"):
                continue
            head, sep, count_str = line.rpartition(" ")
            if not sep or not head:
                errors.append(f"line {lineno}: expected 'frames... count': {line!r}")
                continue
            if not count_str.isdigit() or int(count_str) <= 0:
                errors.append(f"line {lineno}: count must be a positive integer: {line!r}")
                continue
            frames = head.split(";")
            if any(not fr for fr in frames):
                errors.append(f"line {lineno}: empty frame name: {line!r}")
                continue
            stacks.append((frames, int(count_str)))
    return stacks, errors


class Node:
    __slots__ = ("name", "value", "children")

    def __init__(self, name):
        self.name = name
        self.value = 0
        self.children = {}


def build_trie(stacks):
    root = Node("all")
    for frames, count in stacks:
        root.value += count
        node = root
        for frame in frames:
            node = node.children.setdefault(frame, Node(frame))
            node.value += count
    return root


def depth_of(node):
    if not node.children:
        return 1
    return 1 + max(depth_of(c) for c in node.children.values())


def color_of(name):
    """Deterministic warm color from the symbol name (flamegraph palette)."""
    h = hashlib.md5(name.encode("utf-8")).digest()
    r = 205 + h[0] % 50
    g = 60 + h[1] % 150
    b = h[2] % 60
    return f"rgb({r},{g},{b})"


def render(root, out_path, source_name):
    total = root.value
    depth = depth_of(root)
    height = depth * FRAME_HEIGHT + 2 * PAD + 2 * FRAME_HEIGHT
    rects = []

    def emit(node, x, width_px, level):
        y = height - PAD - (level + 1) * FRAME_HEIGHT
        pct = 100.0 * node.value / total
        label = html.escape(node.name, quote=True)
        tooltip = f"{label} ({node.value} samples, {pct:.2f}%)"
        rects.append(
            f'<g><title>{tooltip}</title>'
            f'<rect x="{x:.2f}" y="{y}" width="{max(width_px, 0.3):.2f}" '
            f'height="{FRAME_HEIGHT - 1}" fill="{color_of(node.name)}" rx="1"/>'
            + (
                f'<text x="{x + 2:.2f}" y="{y + FRAME_HEIGHT - 5}" '
                f'font-size="{FONT_SIZE}" font-family="monospace" '
                f'clip-path="inset(0)">{clip_text(node.name, width_px)}</text>'
                if width_px >= MIN_TEXT_WIDTH
                else ""
            )
            + "</g>"
        )
        cx = x
        for child in sorted(node.children.values(), key=lambda c: c.name):
            w = width_px * child.value / node.value
            emit(child, cx, w, level + 1)
            cx += w

    def clip_text(name, width_px):
        max_chars = max(int(width_px / (FONT_SIZE * 0.62)) - 1, 0)
        if len(name) <= max_chars:
            return html.escape(name)
        return html.escape(name[: max(max_chars - 2, 0)] + "..") if max_chars >= 3 else ""

    emit(root, PAD, WIDTH - 2 * PAD, 0)
    title = html.escape(f"CPU flamegraph — {source_name} ({total} samples)")
    svg = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{height}" '
        f'viewBox="0 0 {WIDTH} {height}">',
        f'<rect width="{WIDTH}" height="{height}" fill="#f8f8f8"/>',
        f'<text x="{PAD}" y="{FRAME_HEIGHT}" font-size="{FONT_SIZE + 3}" '
        f'font-family="monospace">{title}</text>',
        *rects,
        "</svg>",
    ]
    with open(out_path, "w", encoding="utf-8") as f:
        f.write("\n".join(svg) + "\n")


def main(argv):
    args = [a for a in argv[1:] if a != "--check"]
    check_only = len(args) != len(argv) - 1
    if not args or (check_only and len(args) != 1) or (not check_only and len(args) != 2):
        sys.stderr.write(
            "usage: fold2svg.py profile.folded profile.svg\n"
            "       fold2svg.py --check profile.folded\n"
        )
        return 2
    stacks, errors = parse_folded(args[0])
    if errors:
        for e in errors[:10]:
            sys.stderr.write(f"fold2svg: {e}\n")
        sys.stderr.write(f"fold2svg: {len(errors)} malformed line(s) in {args[0]}\n")
        return 1
    if not stacks:
        sys.stderr.write(f"fold2svg: no stacks in {args[0]}\n")
        return 1
    total = sum(c for _, c in stacks)
    if check_only:
        print(f"OK: {args[0]}: {len(stacks)} unique stacks, {total} samples")
        return 0
    render(build_trie(stacks), args[1], args[0])
    print(f"{args[1]}: {len(stacks)} unique stacks, {total} samples rendered")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
