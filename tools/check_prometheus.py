#!/usr/bin/env python3
"""Tiny format checker for Prometheus text exposition (version 0.0.4).

Used by the CI observability smoke job to validate `neat_cli --metrics-out`
artifacts. Checks, line by line:

  * every line is a comment (`# TYPE name kind`, `# HELP ...`) or a sample
    `name{labels} value` with a parseable value;
  * metric and label names match the Prometheus grammar;
  * every sample belongs to a family announced by a `# TYPE` line, with the
    suffix rules for histograms (`_bucket`/`_sum`/`_count`);
  * every family carries BOTH a `# HELP` and a `# TYPE` line (the registry
    synthesizes help text for unregistered families, so a family arriving
    without one is an exporter bug);
  * histogram `_bucket` series are cumulative (non-decreasing in `le`) and
    end with an `le="+Inf"` bucket equal to `_count`;
  * the process-metadata families every global-registry exposition must
    carry are present: `neat_build_info` (with git_sha/compiler/build_type
    labels) and `neat_process_start_time_seconds`.

Exit code 0 when the file is valid, 1 with a message on stderr otherwise.

  $ python3 tools/check_prometheus.py metrics.prom
"""
import re
import sys

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
LABEL_RE = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$')


def fail(lineno, msg):
    sys.stderr.write(f"check_prometheus: line {lineno}: {msg}\n")
    sys.exit(1)


def parse_value(raw, lineno):
    if raw in ("+Inf", "-Inf", "NaN"):
        return float(raw.replace("Inf", "inf").replace("NaN", "nan"))
    try:
        return float(raw)
    except ValueError:
        fail(lineno, f"unparseable sample value {raw!r}")


def split_labels(block, lineno):
    labels = {}
    if not block:
        return labels
    for part in block.split(","):
        m = LABEL_RE.match(part)
        if m is None:
            fail(lineno, f"malformed label {part!r}")
        labels[m.group("key")] = m.group("value")
    return labels


def family_of(name, types):
    """The declared family a sample name belongs to, or None."""
    if name in types:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        base = name.removesuffix(suffix)
        if base != name and types.get(base) == "histogram":
            return base
    return None


def main(path):
    types = {}  # family name -> kind
    helps = {}  # family name -> help text
    # (family, labels-without-le as sorted tuple) -> list of (le, cumulative)
    buckets = {}
    counts = {}

    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("#"):
                parts = line.split(maxsplit=3)
                if len(parts) >= 2 and parts[1] == "TYPE":
                    if len(parts) != 4:
                        fail(lineno, f"malformed TYPE line {line!r}")
                    name, kind = parts[2], parts[3]
                    if NAME_RE.fullmatch(name) is None:
                        fail(lineno, f"invalid metric name {name!r}")
                    if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                        fail(lineno, f"unknown metric kind {kind!r}")
                    if name in types:
                        fail(lineno, f"duplicate TYPE for {name!r}")
                    types[name] = kind
                elif len(parts) >= 2 and parts[1] == "HELP":
                    if len(parts) < 3:
                        fail(lineno, f"malformed HELP line {line!r}")
                    name = parts[2]
                    if NAME_RE.fullmatch(name) is None:
                        fail(lineno, f"invalid metric name {name!r}")
                    if name in helps:
                        fail(lineno, f"duplicate HELP for {name!r}")
                    if len(parts) < 4 or not parts[3].strip():
                        fail(lineno, f"HELP for {name!r} has empty text")
                    helps[name] = parts[3]
                continue
            m = SAMPLE_RE.match(line)
            if m is None:
                fail(lineno, f"unparseable sample line {line!r}")
            name = m.group("name")
            labels = split_labels(m.group("labels"), lineno)
            value = parse_value(m.group("value"), lineno)
            family = family_of(name, types)
            if family is None:
                fail(lineno, f"sample {name!r} has no preceding # TYPE line")
            if name == "neat_build_info":
                for key in ("git_sha", "compiler", "build_type"):
                    if key not in labels:
                        fail(lineno, f"neat_build_info sample missing {key!r} label")
            if types[family] == "histogram":
                key = (family, tuple(sorted((k, v) for k, v in labels.items() if k != "le")))
                if name.endswith("_bucket"):
                    if "le" not in labels:
                        fail(lineno, f"histogram bucket {name!r} missing le label")
                    buckets.setdefault(key, []).append((labels["le"], value, lineno))
                elif name.endswith("_count"):
                    counts[key] = (value, lineno)

    if not types:
        fail(0, "no metric families found")
    for required in ("neat_build_info", "neat_process_start_time_seconds"):
        if required not in types:
            fail(0, f"required process-metadata family {required!r} is missing")
    for name in types:
        if name not in helps:
            fail(0, f"family {name!r} has a TYPE line but no HELP line")
    for name in helps:
        if name not in types:
            fail(0, f"family {name!r} has a HELP line but no TYPE line")
    for key, series in buckets.items():
        prev = -1.0
        for le, value, lineno in series:
            if value < prev:
                fail(lineno, f"histogram {key[0]!r} buckets not cumulative at le={le}")
            prev = value
        last_le, last_value, lineno = series[-1]
        if last_le != "+Inf":
            fail(lineno, f"histogram {key[0]!r} does not end with an le=\"+Inf\" bucket")
        if key in counts and counts[key][0] != last_value:
            fail(counts[key][1],
                 f"histogram {key[0]!r} _count {counts[key][0]} != +Inf bucket {last_value}")
    print(f"check_prometheus: {path}: OK "
          f"({len(types)} families, all with HELP, {len(buckets)} histogram series)")


if __name__ == "__main__":
    if len(sys.argv) != 2:
        sys.stderr.write("usage: check_prometheus.py FILE\n")
        sys.exit(2)
    main(sys.argv[1])
