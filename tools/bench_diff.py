#!/usr/bin/env python3
"""Regression gate over two BENCH_*.json bench-trajectory files.

Compares the current bench output against a baseline (both produced by the
fig6/fig7 bench binaries, see bench/bench_json.h) and exits non-zero when
any duration metric's median regressed by more than the threshold:

  $ python3 tools/bench_diff.py baseline/BENCH_fig6.json bench_results/BENCH_fig6.json
  $ python3 tools/bench_diff.py --threshold 0.25 old.json new.json

Rules:
  * only metrics ending in `_s` (seconds medians) gate by default; counters
    like sp_calls/flows are workload shape, not speed — pass --all-metrics
    to gate every shared metric;
  * rows or metrics present on one side only are reported as `new` (only in
    current) or `gone` (only in baseline) but never fail the gate — benches
    gain rows over time, e.g. when the fig7 ladder grows a CH column;
  * baseline medians under --min-baseline seconds (default 0.005) are
    skipped: at bench scale such timings are dominated by noise;
  * a mismatch in object_scale/network_scale/repeats between the two files
    fails immediately — the comparison would be meaningless.

Exit codes: 0 ok, 1 regression found, 2 usage/incomparable inputs.
"""
import argparse
import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.stderr.write(f"bench_diff: cannot read {path}: {e}\n")
        sys.exit(2)
    for key in ("bench", "rows"):
        if key not in doc:
            sys.stderr.write(f"bench_diff: {path}: missing '{key}'\n")
            sys.exit(2)
    return doc


def rows_by_name(doc):
    return {row["name"]: row.get("metrics", {}) for row in doc["rows"]}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="BENCH_*.json of the reference commit")
    ap.add_argument("current", help="BENCH_*.json of the candidate commit")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="allowed relative median growth (default 0.10 = +10%%)")
    ap.add_argument("--min-baseline", type=float, default=0.005,
                    help="skip duration metrics whose baseline median is below "
                         "this many seconds (default 0.005)")
    ap.add_argument("--all-metrics", action="store_true",
                    help="gate every shared metric, not just *_s durations")
    args = ap.parse_args()

    old = load(args.baseline)
    new = load(args.current)
    if old["bench"] != new["bench"]:
        sys.stderr.write(f"bench_diff: comparing different benches "
                         f"({old['bench']} vs {new['bench']})\n")
        sys.exit(2)
    for key in ("object_scale", "network_scale", "repeats"):
        if old.get(key) != new.get(key):
            sys.stderr.write(f"bench_diff: {key} differs "
                             f"({old.get(key)} vs {new.get(key)}); rerun both "
                             f"sides with identical NEAT_BENCH_* settings\n")
            sys.exit(2)

    old_rows, new_rows = rows_by_name(old), rows_by_name(new)
    regressions, compared, skipped = [], 0, 0
    added, removed = 0, 0
    for name in sorted(old_rows.keys() | new_rows.keys()):
        if name not in old_rows:
            added += 1
            print(f"        new  {name} (only in current, not gated)")
            continue
        if name not in new_rows:
            removed += 1
            print(f"       gone  {name} (only in baseline, not gated)")
            continue
        for metric in sorted(old_rows[name].keys() & new_rows[name].keys()):
            if not args.all_metrics and not metric.endswith("_s"):
                continue
            before, after = old_rows[name][metric], new_rows[name][metric]
            if metric.endswith("_s") and before < args.min_baseline:
                skipped += 1
                continue
            compared += 1
            if before <= 0:
                continue
            growth = (after - before) / before
            marker = "REGRESSION" if growth > args.threshold else "ok"
            if growth > args.threshold:
                regressions.append((name, metric, before, after, growth))
            print(f"  {marker:>10}  {name}/{metric}: {before:.6g} -> {after:.6g} "
                  f"({growth:+.1%})")

    print(f"bench_diff [{new['bench']}]: {compared} metric(s) compared, "
          f"{skipped} below-noise skipped, {added} new row(s), "
          f"{removed} gone, {len(regressions)} regression(s) "
          f"(threshold +{args.threshold:.0%})")
    if regressions:
        for name, metric, before, after, growth in regressions:
            sys.stderr.write(f"bench_diff: {name}/{metric} regressed "
                             f"{growth:+.1%} ({before:.6g}s -> {after:.6g}s)\n")
        sys.exit(1)


if __name__ == "__main__":
    main()
